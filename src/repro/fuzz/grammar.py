"""Structured guest-program generator for the differential fuzzer.

This module extracts the random-program idea from
``tests/test_differential_random.py`` into a library and widens the
grammar well past what that harness ever emitted: i64 arithmetic, while
loops with bounded counters, boolean operators, if/elif/else chains,
nested helper-call chains (helpers calling helpers), an ``Array(f64)``
constructor field with indexed loads *and* stores, scatter stores through
computed indices, nested for-loops with affine and non-affine (clamped)
index expressions, ``break``/``continue``, float ``//``/``%``/``**``, and
``int()``/``float()`` casts.

Programs are represented as an immutable :class:`ProgramSpec` — a genome
of per-block seeds and feature switches — and rendered to guest source by
a *pure function* of the spec.  That buys three properties the fuzzer
needs:

* **validity by construction** — every rendered program obeys the guest
  coding rules and the numeric-safety rules below, so any observed
  divergence is a compiler bug, never a generator bug;
* **cheap structural mutation** — mutating a block's seed, depth, or kind
  re-renders only that block; and
* **spec-level minimization** — dropping blocks/helpers or shrinking
  depths always yields another valid program.

Numeric safety (the "agree" in *bit-for-bit agreement* means the full 64
bits, so no program may reach inf/NaN or i64 overflow):

* f64 literals are exact binary fractions; division, ``//`` and ``%`` use
  nonzero power-of-two literal divisors; ``**`` only ever squares.
* f64 locals are clamped to ±1000 after every assignment, helper returns
  are clamped to ±1024 inside the helper, so expression leaves stay small
  and a depth-4 tree of squarings tops out near 1e64 — far from overflow.
* i64 locals are clamped to ±8192, multiplication is by small literals
  only, ``//``/``%`` divisors are nonzero literals, so no i64 wrap-around
  (whose Python/C semantics differ) can occur.
* ``int()`` is applied to clamped f64 variables only; ``float()`` to
  clamped i64 variables only — both exact.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any

__all__ = [
    "BlockSpec",
    "Features",
    "FULL_FEATURES",
    "HEADER",
    "HelperSpec",
    "LEGACY_FEATURES",
    "ProgramSpec",
    "ctor_args",
    "mutate",
    "random_spec",
    "render",
    "spec_from_dict",
    "spec_to_dict",
]

#: module header prepended to every rendered program
HEADER = "from repro import Array, f64, i64, wj, wootin\n\n\n"

#: class name used by every rendered program (one program per module)
CLASS_NAME = "FuzzGuest"

#: exact binary fractions: parsed identically by CPython and C strtod
_LITS = ["0.5", "-0.5", "1.5", "2.0", "0.25", "1.0", "3.0", "-1.25", "0.125"]
#: nonzero power-of-two divisors (exact, and defined for // and % too)
_DIVISORS = ["2.0", "4.0", "0.5", "8.0"]
#: small nonzero i64 literals (divisors and multipliers)
_ILITS = ["1", "2", "3", "5", "7", "-2", "-3", "9", "4"]

_BLOCK_KINDS = ("scalar", "for_arr", "scatter", "while", "if_chain",
                "nested")


@dataclass(frozen=True)
class Features:
    """Grammar switches.  ``LEGACY_FEATURES`` reproduces the shape of the
    original test-harness generator; ``FULL_FEATURES`` enables everything
    the fuzzer added on top."""

    i64_arith: bool = True
    while_loops: bool = True
    bool_ops: bool = True
    if_chains: bool = True
    helper_chains: bool = True
    data_field: bool = True
    scatter: bool = True
    break_continue: bool = True
    new_ops: bool = True
    nested_loops: bool = True


LEGACY_FEATURES = Features(i64_arith=False, while_loops=False,
                           bool_ops=False, if_chains=False,
                           helper_chains=False, data_field=False,
                           scatter=False, break_continue=False,
                           new_ops=False, nested_loops=False)
FULL_FEATURES = Features()


@dataclass(frozen=True)
class HelperSpec:
    """One helper method.  ``ty`` is ``"f"`` (f64) or ``"i"`` (i64);
    ``callees`` names helpers declared *after* this one (call chains are
    acyclic by construction)."""

    name: str
    ty: str
    seed: int
    depth: int
    nparams: int
    callees: tuple[str, ...] = ()


@dataclass(frozen=True)
class BlockSpec:
    """One statement block in the body of ``run``.  Rendering is a pure
    function of the fields, so blocks mutate independently."""

    kind: str
    seed: int
    depth: int = 3
    arms: int = 2
    use_break: bool = False
    use_continue: bool = False


@dataclass(frozen=True)
class ProgramSpec:
    """A complete generated guest program (genome form)."""

    seed: int
    n: int
    iters: int
    a: float
    b: float
    k: int | None
    data: tuple[float, ...] | None
    helpers: tuple[HelperSpec, ...]
    blocks: tuple[BlockSpec, ...]
    features: Features = FULL_FEATURES


# ---------------------------------------------------------------------------
# expression generation


def _fleaf(rng: random.Random, ctx: dict[str, Any]) -> str:
    pool = list(ctx["f_leaves"])
    if rng.random() < 0.4:
        return rng.choice(_LITS)
    return rng.choice(pool) if pool else rng.choice(_LITS)


def _ileaf(rng: random.Random, ctx: dict[str, Any]) -> str:
    pool = list(ctx["i_leaves"])
    if rng.random() < 0.4 or not pool:
        return rng.choice(_ILITS)
    return rng.choice(pool)


def _fexpr(rng: random.Random, ctx: dict[str, Any], depth: int,
           feats: Features) -> str:
    """One f64 expression of at most ``depth`` operator levels."""
    if depth <= 0 or rng.random() < 0.25:
        return _fleaf(rng, ctx)
    ops = ["+", "-", "*", "+", "-", "*", "/"]
    if feats.new_ops:
        ops += ["//", "%", "**", "abs", "min", "max", "cast"]
    if ctx["f_calls"] and rng.random() < 0.3:
        name, nparams = rng.choice(ctx["f_calls"])
        args = ", ".join(_fexpr(rng, ctx, 1, feats) for _ in range(nparams))
        return f"{ctx['recv']}{name}({args})"
    op = rng.choice(ops)
    if op == "abs":
        return f"abs({_fexpr(rng, ctx, depth - 1, feats)})"
    if op in ("min", "max"):
        return (f"{op}({_fexpr(rng, ctx, depth - 1, feats)}, "
                f"{_fexpr(rng, ctx, depth - 1, feats)})")
    if op == "cast":
        return f"float({_ileaf(rng, ctx)})" if ctx["i_leaves"] else \
            _fleaf(rng, ctx)
    left = _fexpr(rng, ctx, depth - 1, feats)
    if op in ("/", "//", "%"):
        return f"({left} {op} {rng.choice(_DIVISORS)})"
    if op == "**":
        return f"({left} ** 2.0)"
    right = _fexpr(rng, ctx, depth - 1, feats)
    return f"({left} {op} {right})"


def _iexpr(rng: random.Random, ctx: dict[str, Any], depth: int,
           feats: Features) -> str:
    """One i64 expression; magnitudes stay far below 2**63 (leaves are
    clamped variables or small literals, multiplication is by literal)."""
    if depth <= 0 or rng.random() < 0.3:
        return _ileaf(rng, ctx)
    if ctx["i_calls"] and rng.random() < 0.3:
        name, nparams = rng.choice(ctx["i_calls"])
        args = ", ".join(_iexpr(rng, ctx, 1, feats) for _ in range(nparams))
        return f"{ctx['recv']}{name}({args})"
    op = rng.choice(["+", "-", "+", "-", "*", "//", "%", "neg", "min",
                     "max", "abs", "cast"])
    left = _iexpr(rng, ctx, depth - 1, feats)
    if op == "*":
        return f"({left} * {rng.choice(['2', '3', '5', '7', '9'])})"
    if op in ("//", "%"):
        return f"({left} {op} {rng.choice(_ILITS)})"
    if op == "neg":
        return f"(-{left})"
    if op == "abs":
        return f"abs({left})"
    if op in ("min", "max"):
        return f"{op}({left}, {_iexpr(rng, ctx, depth - 1, feats)})"
    if op == "cast":
        clamped = ctx["clamped_f"]
        if clamped:
            return f"int({rng.choice(clamped)})"
        return _ileaf(rng, ctx)
    right = _iexpr(rng, ctx, depth - 1, feats)
    return f"({left} {op} {right})"


def _bexpr(rng: random.Random, ctx: dict[str, Any], depth: int,
           feats: Features) -> str:
    """One boolean expression (comparisons, optionally and/or/not)."""
    if not feats.bool_ops or depth <= 0 or rng.random() < 0.5:
        if ctx["i_leaves"] and feats.i64_arith and rng.random() < 0.4:
            op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            return (f"{_iexpr(rng, ctx, 1, feats)} {op} "
                    f"{_iexpr(rng, ctx, 1, feats)}")
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return (f"{_fexpr(rng, ctx, 1, feats)} {op} "
                f"{_fexpr(rng, ctx, 1, feats)}")
    kind = rng.randrange(3)
    if kind == 0:
        return (f"({_bexpr(rng, ctx, depth - 1, feats)} and "
                f"{_bexpr(rng, ctx, depth - 1, feats)})")
    if kind == 1:
        return (f"({_bexpr(rng, ctx, depth - 1, feats)} or "
                f"{_bexpr(rng, ctx, depth - 1, feats)})")
    return f"(not {_bexpr(rng, ctx, depth - 1, feats)})"


# ---------------------------------------------------------------------------
# statement rendering


class _Emitter:
    """Indentation-tracking line buffer."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def put(self, text: str) -> None:
        self.lines.append("    " * self.indent + text if text else "")

    def block(self, header: str) -> "_IndentCtx":
        self.put(header)
        return _IndentCtx(self)


class _IndentCtx:
    def __init__(self, em: _Emitter) -> None:
        self.em = em

    def __enter__(self) -> None:
        self.em.indent += 1

    def __exit__(self, *exc: Any) -> None:
        self.em.indent -= 1


def _clamp_f(em: _Emitter, var: str) -> None:
    with em.block(f"if {var} > 1000.0:"):
        em.put(f"{var} = 1000.0")
    with em.block(f"if {var} < -1000.0:"):
        em.put(f"{var} = -1000.0")


def _clamp_i(em: _Emitter, var: str) -> None:
    with em.block(f"if {var} > 8192:"):
        em.put(f"{var} = 8192")
    with em.block(f"if {var} < -8192:"):
        em.put(f"{var} = -8192")


def _scalar_stmt(em: _Emitter, rng: random.Random, ctx: dict[str, Any],
                 depth: int, feats: Features) -> None:
    """One clamped assignment to a scalar local."""
    targets = ["x", "y"]
    if feats.i64_arith:
        targets.append("m")
    tgt = rng.choice(targets)
    if tgt == "m":
        em.put(f"m = {_iexpr(rng, ctx, depth, feats)}")
        _clamp_i(em, "m")
    else:
        em.put(f"{tgt} = {_fexpr(rng, ctx, depth, feats)}")
        _clamp_f(em, tgt)


def _base_ctx(spec: ProgramSpec, recv: str = "self.") -> dict[str, Any]:
    feats = spec.features
    f_leaves = ["x", "y", "self.a", "self.b"]
    i_leaves: list[str] = []
    clamped_f = ["x", "y"]
    if feats.i64_arith:
        i_leaves += ["m", "self.n"]
        if spec.k is not None:
            i_leaves.append("self.k")
        f_leaves.append("float(m)")
    f_calls = [(h.name, h.nparams) for h in spec.helpers if h.ty == "f"]
    i_calls = [(h.name, h.nparams) for h in spec.helpers if h.ty == "i"]
    return {"f_leaves": f_leaves, "i_leaves": i_leaves,
            "clamped_f": clamped_f, "f_calls": f_calls, "i_calls": i_calls,
            "recv": recv}


def _loop_ctx(ctx: dict[str, Any], spec: ProgramSpec) -> dict[str, Any]:
    """The base context widened with loop-local leaves."""
    out = dict(ctx)
    out["f_leaves"] = list(ctx["f_leaves"]) + ["arr[i]", "float(i)"]
    if spec.data is not None and spec.features.data_field:
        out["f_leaves"].append("self.data[i]")
    if spec.features.i64_arith:
        out["i_leaves"] = list(ctx["i_leaves"]) + ["i"]
    return out


def _emit_block(em: _Emitter, blk: BlockSpec, spec: ProgramSpec) -> None:
    feats = spec.features
    rng = random.Random(blk.seed)
    ctx = _base_ctx(spec)
    if blk.kind == "scalar":
        for _ in range(rng.randrange(1, 3)):
            _scalar_stmt(em, rng, ctx, blk.depth, feats)
        return
    if blk.kind == "if_chain":
        lctx = ctx
        with em.block(f"if {_bexpr(rng, lctx, 2, feats)}:"):
            _scalar_stmt(em, rng, lctx, blk.depth, feats)
        for _ in range(max(0, blk.arms - 2)):
            with em.block(f"elif {_bexpr(rng, lctx, 2, feats)}:"):
                _scalar_stmt(em, rng, lctx, blk.depth, feats)
        with em.block("else:"):
            _scalar_stmt(em, rng, lctx, blk.depth, feats)
        return
    if blk.kind == "while":
        bound = rng.randrange(1, 4)
        cond = f"w < {bound}"
        wctx = dict(ctx)
        wctx["i_leaves"] = list(ctx["i_leaves"]) + ["w"] \
            if feats.i64_arith else ctx["i_leaves"]
        if feats.bool_ops and rng.random() < 0.5:
            cond = f"{cond} and {_bexpr(rng, wctx, 1, feats)}"
        em.put("w = 0")
        with em.block(f"while {cond}:"):
            _scalar_stmt(em, rng, wctx, blk.depth, feats)
            if blk.use_break and feats.break_continue:
                with em.block(f"if {_bexpr(rng, wctx, 1, feats)}:"):
                    em.put("break")
            em.put("w = w + 1")
        return
    if blk.kind == "nested":
        # nested loops over the array, with affine (``arr[i + j]``) or
        # non-affine (min-clamped product) indexing — the affine form is
        # exactly what the mid-end's range analysis can prove in-bounds
        # (bounds-check elimination), the clamped form must keep its
        # check, and both must agree bit-for-bit across backends either
        # way.  The update is a contraction (0.5/0.25 factors), so array
        # values stay bounded across iterations.
        lctx = dict(_loop_ctx(ctx, spec))
        lctx["f_leaves"] = list(lctx["f_leaves"]) + ["float(j)"]
        if feats.i64_arith:
            lctx["i_leaves"] = list(lctx["i_leaves"]) + ["j"]
        affine = blk.seed % 2 == 0
        with em.block("for i in range(self.n - 2):"):
            with em.block("for j in range(3):"):
                em.put(f"x = {_fexpr(rng, lctx, blk.depth, feats)}")
                _clamp_f(em, "x")
                if affine:
                    em.put("arr[i + j] = x * 0.25 + arr[i + j] * 0.5")
                else:
                    em.put("arr[min(i * j, self.n - 1)] = x * 0.25")
        return
    if blk.kind == "scatter":
        lctx = _loop_ctx(ctx, spec)
        with em.block("for i in range(self.n):"):
            em.put(f"m = {_iexpr(rng, lctx, blk.depth, feats)}")
            _clamp_i(em, "m")
            em.put(f"x = {_fexpr(rng, lctx, blk.depth, feats)}")
            _clamp_f(em, "x")
            em.put("arr[m % self.n] = x")
        return
    # default: "for_arr" — the legacy update-loop shape, optionally with
    # continue/break, an inner conditional, and data-field stores.
    lctx = _loop_ctx(ctx, spec)
    rngsrc = "range(len(arr))" if rng.random() < 0.5 else "range(self.n)"
    store_data = (spec.data is not None and feats.data_field
                  and rng.random() < 0.3)
    with em.block(f"for i in {rngsrc}:"):
        if blk.use_continue and feats.break_continue:
            with em.block(f"if {_bexpr(rng, lctx, 1, feats)}:"):
                em.put("continue")
        em.put(f"x = {_fexpr(rng, lctx, blk.depth, feats)}")
        _clamp_f(em, "x")
        if rng.random() < 0.5:
            if feats.if_chains:
                with em.block(f"if {_bexpr(rng, lctx, 1, feats)}:"):
                    em.put(f"x = x * {rng.choice(_DIVISORS)}")
                with em.block("else:"):
                    em.put(f"x = x - {rng.choice(_LITS)}")
            else:
                with em.block(f"if x > {rng.choice(_LITS)}:"):
                    em.put(f"x = x * {rng.choice(_DIVISORS)}")
        target = "self.data[i]" if store_data else "arr[i]"
        em.put(f"{target} = x")
        if blk.use_break and feats.break_continue:
            with em.block(f"if {_bexpr(rng, lctx, 1, feats)}:"):
                em.put("break")


def _emit_helper(em: _Emitter, h: HelperSpec, spec: ProgramSpec) -> None:
    rng = random.Random(h.seed)
    feats = spec.features
    later = {c for c in h.callees}
    f_calls = [(o.name, o.nparams) for o in spec.helpers
               if o.name in later and o.ty == "f"]
    i_calls = [(o.name, o.nparams) for o in spec.helpers
               if o.name in later and o.ty == "i"]
    if h.ty == "f":
        params = [f"v{j}" for j in range(h.nparams)]
        sig = ", ".join(f"{p}: f64" for p in params)
        ctx = {"f_leaves": params + ["self.a", "self.b"], "i_leaves": [],
               "clamped_f": [], "f_calls": f_calls, "i_calls": [],
               "recv": "self."}
        body = _fexpr(rng, ctx, h.depth, feats)
        with em.block(f"def {h.name}(self, {sig}) -> f64:"):
            em.put(f"return max(-1024.0, min(1024.0, {body}))")
    else:
        params = [f"v{j}" for j in range(h.nparams)]
        sig = ", ".join(f"{p}: i64" for p in params)
        ctx = {"f_leaves": [], "i_leaves": params + ["self.n"],
               "clamped_f": [], "f_calls": [], "i_calls": i_calls,
               "recv": "self."}
        body = _iexpr(rng, ctx, h.depth, feats)
        with em.block(f"def {h.name}(self, {sig}) -> i64:"):
            em.put(f"return max(-8192, min(8192, {body}))")
    em.put("")


# ---------------------------------------------------------------------------
# program rendering


def render(spec: ProgramSpec) -> str:
    """Render the spec to a complete guest module (header included)."""
    feats = spec.features
    em = _Emitter()
    em.put("@wootin")
    with em.block(f"class {CLASS_NAME}:"):
        em.put("a: f64")
        em.put("b: f64")
        em.put("n: i64")
        ctor_params = ["a: f64", "b: f64", "n: i64"]
        ctor_body = ["self.a = a", "self.b = b", "self.n = n"]
        if spec.k is not None:
            em.put("k: i64")
            ctor_params.append("k: i64")
            ctor_body.append("self.k = k")
        if spec.data is not None and feats.data_field:
            em.put("data: Array(f64)")
            ctor_params.append("data: Array(f64)")
            ctor_body.append("self.data = data")
        em.put("")
        with em.block(f"def __init__(self, {', '.join(ctor_params)}):"):
            for line in ctor_body:
                em.put(line)
        em.put("")
        for h in spec.helpers:
            _emit_helper(em, h, spec)
        rng = random.Random(spec.seed)
        with em.block("def run(self, iters: i64) -> f64:"):
            em.put(f"x = {rng.choice(_LITS)}")
            em.put(f"y = {rng.choice(_LITS)}")
            if feats.i64_arith:
                em.put(f"m = {rng.randrange(1, 8)}")
            if any(b.kind == "while" for b in spec.blocks):
                em.put("w = 0")
            em.put("arr = wj.zeros(f64, self.n)")
            init_ctx = {"f_leaves": ["float(i)", "self.a", "self.b"],
                        "i_leaves": [], "clamped_f": [], "f_calls": [],
                        "i_calls": [], "recv": "self."}
            with em.block("for i in range(self.n):"):
                em.put(f"arr[i] = "
                       f"{_fexpr(rng, init_ctx, 2, LEGACY_FEATURES)}")
            with em.block("for it in range(iters):"):
                if not spec.blocks:
                    em.put("x = x + 0.5")
                    _clamp_f(em, "x")
                for blk in spec.blocks:
                    _emit_block(em, blk, spec)
            em.put("total = 0.0")
            with em.block("for i in range(self.n):"):
                em.put("total = total + arr[i]")
            if spec.data is not None and feats.data_field:
                with em.block("for i in range(self.n):"):
                    em.put("total = total + self.data[i] * 0.5")
            if feats.i64_arith:
                em.put("total = total + float(m) * 0.0078125")
            em.put("total = total + x * 0.0625 + y * 0.0625")
            em.put('wj.output("arr", arr)')
            if spec.data is not None and feats.data_field:
                em.put('wj.output("data", self.data)')
            em.put("return total")
    return HEADER + "\n".join(em.lines) + "\n"


def ctor_args(spec: ProgramSpec) -> list[Any]:
    """Positional constructor arguments matching :func:`render`'s ctor.

    The data buffer is materialized fresh on every call so mutation by one
    differential leg can never leak into the next.
    """
    import numpy as np

    args: list[Any] = [spec.a, spec.b, spec.n]
    if spec.k is not None:
        args.append(spec.k)
    if spec.data is not None and spec.features.data_field:
        args.append(np.array(spec.data[:spec.n], dtype=np.float64))
    return args


# ---------------------------------------------------------------------------
# random generation and mutation


def _random_helpers(rng: random.Random, feats: Features) \
        -> tuple[HelperSpec, ...]:
    if not feats.helper_chains:
        if rng.random() < 0.5:
            return (HelperSpec("h0", "f", rng.randrange(1 << 30), 2, 1),)
        return ()
    names: list[HelperSpec] = []
    count = rng.randrange(0, 4)
    kinds = ["f", "f", "i"] if feats.i64_arith else ["f"]
    for j in range(count):
        ty = rng.choice(kinds)
        later = [h.name for h in names[j + 1:]]  # none yet; filled below
        names.append(HelperSpec(f"h{j}", ty, rng.randrange(1 << 30),
                                rng.randrange(1, 3),
                                rng.randrange(1, 3), tuple(later)))
    # wire call chains: helper j may call any helper declared after it
    out: list[HelperSpec] = []
    for j, h in enumerate(names):
        pool = [o.name for o in names[j + 1:]]
        callees = tuple(c for c in pool if rng.random() < 0.5)
        out.append(dataclasses.replace(h, callees=callees))
    return tuple(out)


def _random_block(rng: random.Random, feats: Features) -> BlockSpec:
    kinds = ["for_arr", "for_arr", "scalar"]
    if feats.while_loops:
        kinds.append("while")
    if feats.if_chains:
        kinds.append("if_chain")
    if feats.scatter and feats.i64_arith:
        kinds.append("scatter")
    if feats.nested_loops:
        kinds.append("nested")
    return BlockSpec(kind=rng.choice(kinds), seed=rng.randrange(1 << 30),
                     depth=rng.randrange(2, 5), arms=rng.randrange(2, 5),
                     use_break=rng.random() < 0.3,
                     use_continue=rng.random() < 0.3)


def random_spec(rng: random.Random,
                features: Features = FULL_FEATURES) -> ProgramSpec:
    """One fresh random program.  With ``LEGACY_FEATURES`` this matches
    the shape of the original 56-seed test-harness generator (single
    update loop, f64-only, no while/boolop/elif)."""
    feats = features
    n = rng.randrange(3, 9)
    if feats == LEGACY_FEATURES:
        blocks = tuple(_random_block(rng, feats)
                       for _ in range(rng.randrange(1, 3)))
    else:
        blocks = tuple(_random_block(rng, feats)
                       for _ in range(rng.randrange(1, 5)))
    return ProgramSpec(
        seed=rng.randrange(1 << 30),
        n=n,
        iters=rng.randrange(1, 4),
        a=rng.randrange(-24, 25) / 8.0,
        b=rng.randrange(-24, 25) / 8.0,
        k=rng.randrange(-9, 10) if feats.i64_arith and rng.random() < 0.5
        else None,
        data=tuple(rng.randrange(-16, 17) / 8.0 for _ in range(8))
        if feats.data_field and rng.random() < 0.5 else None,
        helpers=_random_helpers(rng, feats),
        blocks=blocks,
        features=feats,
    )


def mutate(rng: random.Random, spec: ProgramSpec) -> ProgramSpec:
    """One structural mutation.  Always yields a valid spec: rendering is
    a pure function of the spec, and every operator below maps valid
    specs to valid specs."""
    feats = spec.features
    ops = ["add_block", "replace_block", "bump_depth", "reseed_block",
           "reseed_prog", "resize", "toggle_flags"]
    if len(spec.blocks) > 1:
        ops.append("drop_block")
    if feats.data_field:
        ops.append("toggle_data")
    if feats.i64_arith:
        ops.append("toggle_k")
    op = rng.choice(ops)
    blocks = list(spec.blocks)
    if op == "add_block":
        blocks.insert(rng.randrange(len(blocks) + 1),
                      _random_block(rng, feats))
        return dataclasses.replace(spec, blocks=tuple(blocks))
    if op == "drop_block":
        blocks.pop(rng.randrange(len(blocks)))
        return dataclasses.replace(spec, blocks=tuple(blocks))
    if op == "replace_block" and blocks:
        blocks[rng.randrange(len(blocks))] = _random_block(rng, feats)
        return dataclasses.replace(spec, blocks=tuple(blocks))
    if op == "bump_depth" and blocks:
        j = rng.randrange(len(blocks))
        d = max(1, min(4, blocks[j].depth + rng.choice([-1, 1])))
        blocks[j] = dataclasses.replace(blocks[j], depth=d)
        return dataclasses.replace(spec, blocks=tuple(blocks))
    if op == "reseed_block" and blocks:
        j = rng.randrange(len(blocks))
        blocks[j] = dataclasses.replace(blocks[j],
                                        seed=rng.randrange(1 << 30))
        return dataclasses.replace(spec, blocks=tuple(blocks))
    if op == "toggle_flags" and blocks:
        j = rng.randrange(len(blocks))
        blocks[j] = dataclasses.replace(
            blocks[j], use_break=rng.random() < 0.5,
            use_continue=rng.random() < 0.5, arms=rng.randrange(2, 5))
        return dataclasses.replace(spec, blocks=tuple(blocks))
    if op == "resize":
        return dataclasses.replace(spec, n=rng.randrange(3, 9),
                                   iters=rng.randrange(1, 4))
    if op == "toggle_data":
        data = None if spec.data is not None else tuple(
            rng.randrange(-16, 17) / 8.0 for _ in range(8))
        return dataclasses.replace(spec, data=data)
    if op == "toggle_k":
        k = None if spec.k is not None else rng.randrange(-9, 10)
        return dataclasses.replace(spec, k=k)
    return dataclasses.replace(spec, seed=rng.randrange(1 << 30),
                               helpers=_random_helpers(rng, feats))


# ---------------------------------------------------------------------------
# (de)serialization — used by the corpus and for reproducer records


def spec_to_dict(spec: ProgramSpec) -> dict[str, Any]:
    """JSON-safe dict form of a spec (inverse of :func:`spec_from_dict`)."""
    d = dataclasses.asdict(spec)
    d["data"] = list(spec.data) if spec.data is not None else None
    d["helpers"] = [dataclasses.asdict(h) for h in spec.helpers]
    d["blocks"] = [dataclasses.asdict(b) for b in spec.blocks]
    d["features"] = dataclasses.asdict(spec.features)
    return d


def spec_from_dict(d: dict[str, Any]) -> ProgramSpec:
    """Rebuild a :class:`ProgramSpec` from its JSON dict form."""
    return ProgramSpec(
        seed=d["seed"], n=d["n"], iters=d["iters"], a=d["a"], b=d["b"],
        k=d["k"],
        data=tuple(d["data"]) if d["data"] is not None else None,
        helpers=tuple(HelperSpec(name=h["name"], ty=h["ty"], seed=h["seed"],
                                 depth=h["depth"], nparams=h["nparams"],
                                 callees=tuple(h["callees"]))
                      for h in d["helpers"]),
        blocks=tuple(BlockSpec(**b) for b in d["blocks"]),
        features=Features(**d["features"]),
    )

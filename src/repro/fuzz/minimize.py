"""Spec-level test-case minimization.

When a generated program diverges (or crashes a leg), the raw reproducer
is usually noisy: several blocks, helpers, and fields that have nothing
to do with the bug.  Because programs are :class:`ProgramSpec` genomes,
minimization works on the *structure* instead of on source lines — drop
blocks, drop helpers, drop the data/k fields, shrink ``n``/``iters`` and
expression depths — and every candidate is a valid program by
construction.  A candidate is accepted when re-running it still produces
the *same divergence signature* (same failing legs, or same crash kind),
greedy to a fixpoint, bounded by an attempt budget.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.fuzz.grammar import ProgramSpec
from repro.fuzz.runner import DiffRunner, divergence_signature

__all__ = ["minimize_spec"]


def _candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """All one-step shrinks of ``spec``, most aggressive first."""
    blocks = spec.blocks
    for j in range(len(blocks)):
        yield dataclasses.replace(
            spec, blocks=blocks[:j] + blocks[j + 1:])
    if spec.helpers:
        yield dataclasses.replace(spec, helpers=())
    for j in range(len(spec.helpers)):
        yield dataclasses.replace(
            spec, helpers=spec.helpers[:j] + spec.helpers[j + 1:])
    if spec.data is not None:
        yield dataclasses.replace(spec, data=None)
    if spec.k is not None:
        yield dataclasses.replace(spec, k=None)
    if spec.iters > 1:
        yield dataclasses.replace(spec, iters=1)
    if spec.n > 3:
        yield dataclasses.replace(spec, n=3)
    for j, blk in enumerate(blocks):
        if blk.depth > 1:
            shrunk = dataclasses.replace(blk, depth=1)
            yield dataclasses.replace(
                spec, blocks=blocks[:j] + (shrunk,) + blocks[j + 1:])
        if blk.arms > 2:
            shrunk = dataclasses.replace(blk, arms=2)
            yield dataclasses.replace(
                spec, blocks=blocks[:j] + (shrunk,) + blocks[j + 1:])
        if blk.use_break or blk.use_continue:
            shrunk = dataclasses.replace(blk, use_break=False,
                                         use_continue=False)
            yield dataclasses.replace(
                spec, blocks=blocks[:j] + (shrunk,) + blocks[j + 1:])


def minimize_spec(runner: DiffRunner, spec: ProgramSpec, signature: str,
                  max_attempts: int = 120) -> ProgramSpec:
    """Greedily shrink ``spec`` while the failure keeps ``signature``.

    Returns the smallest spec reached within the attempt budget (possibly
    the original).  The runner should have coverage disabled for speed;
    the caller re-runs the result once to record the final report.
    """
    attempts = 0
    current = spec
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for cand in _candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            res = runner.run_spec(cand)
            if divergence_signature(res) == signature:
                current = cand
                progress = True
                break
    return current

"""Lowering: guest Python AST → typed, devirtualized IR.

This pass fuses the paper's "simple program analysis" (§3.3 Method calls)
with translation.  Because the JIT knows the concrete shape of the entry
receiver and arguments (from :mod:`repro.frontend.objectgraph`), and the
coding rules guarantee strict-final locals and branch-free constructors,
every expression's concrete type — and for semi-immutable state, its value —
can be computed while walking the AST:

* method calls are resolved against the receiver's concrete class and
  trigger on-demand *specialization* of the callee for the concrete argument
  shapes (devirtualization + monomorphization);
* constructors are abstractly interpreted into :class:`NewObj` field
  initializations (constructor inlining);
* loops are analyzed to a shape fixpoint so that values merged around back
  edges soundly lose constant/snapshot knowledge;
* the typed coding-rule checks (strict-final locals/returns, array-only
  field mutation, device/host intrinsic contexts) run inline.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.errors import CodingRuleViolation, LoweringError, TypeFlowError
from repro.frontend import ir
from repro.frontend import rules
from repro.frontend.shapes import (
    ArrayShape,
    ObjShape,
    PrimShape,
    Shape,
    merge_shapes,
    shapes_equal,
)
from repro.frontend.source import SourceInfo, method_ast
from repro.lang import types as _t
from repro.lang.annotations import ForeignFunction, is_global_kernel
from repro.lang.intrinsics import intrinsic_registry

__all__ = ["lower_method", "SpecializeRequest"]


class SpecializeRequest:
    """What lowering hands back to the JIT engine when it meets a call."""

    def __init__(self, minfo, self_shape, arg_shapes, device):
        self.minfo = minfo
        self.self_shape = self_shape
        self.arg_shapes = arg_shapes
        self.device = device


class _Env:
    """Mapping of local/parameter names to their current shapes."""

    def __init__(self, data: Optional[dict] = None):
        self.vars: dict[str, Shape] = dict(data or {})
        self.decl: dict[str, _t.Type] = {}

    def copy(self) -> "_Env":
        env = _Env(self.vars)
        env.decl = dict(self.decl)
        return env

    def merge_with(self, other: "_Env", where: str) -> "_Env":
        out = _Env()
        for name, shape in self.vars.items():
            if name in other.vars:
                out.vars[name] = merge_shapes(shape, other.vars[name], where=where)
        out.decl = {k: v for k, v in self.decl.items() if k in out.vars or k in other.decl}
        for k, v in other.decl.items():
            out.decl.setdefault(k, v)
        return out

    def same_as(self, other: "_Env") -> bool:
        if set(self.vars) != set(other.vars):
            return False
        return all(shapes_equal(self.vars[k], other.vars[k]) for k in self.vars)


class _LoopCtx:
    def __init__(self):
        self.break_envs: list[_Env] = []
        self.continue_envs: list[_Env] = []


class Lowerer:
    """Lowers one guest method for one concrete specialization."""

    def __init__(self, engine, minfo, self_shape: ObjShape, arg_shapes, *, device: bool):
        self.engine = engine  # SpecializeCtx: .specialize(...), .new_site_id()
        self.minfo = minfo
        self.self_shape = self_shape
        self.arg_shapes = list(arg_shapes)
        self.device = device
        self.src: SourceInfo = method_ast(minfo.func)
        rules.check_method_source(self.src)
        rules.check_class(minfo.owner)
        self.tree = self.src.tree
        self.ret_annotation = self._resolve_ret_annotation()
        self.ret_shape: Optional[Shape] = None
        self.ret_type: Optional[_t.Type] = None
        self.param_names: list[str] = []

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _err(self, msg: str, node=None) -> LoweringError:
        return LoweringError(msg, where=self.src.where(node))

    def _resolve_ret_annotation(self) -> Optional[_t.Type]:
        ann = self.minfo.func.__annotations__.get("return", _MISSING)
        if ann is _MISSING:
            return None
        return _t.resolve_annotation(ann, owner=self.minfo.func)

    def _resolve_static(self, name: str):
        """Resolve a non-local name against the guest function's globals."""
        g = self.src.globals
        if name in g:
            return g[name]
        import builtins

        return getattr(builtins, name, _MISSING)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def lower(self) -> ir.FuncIR:
        args = self.tree.args.args
        if not args or args[0].arg != "self":
            raise self._err("guest methods must take self first")
        names = [a.arg for a in args[1:]]
        if len(names) != len(self.arg_shapes):
            raise self._err(
                f"{self.minfo} expects {len(names)} arguments, "
                f"got {len(self.arg_shapes)}"
            )
        env = _Env()
        env.vars["self"] = self.self_shape
        env.decl["self"] = self.self_shape.ty
        shaped_args = []
        for arg_node, shape in zip(args[1:], self.arg_shapes):
            ann = self.minfo.func.__annotations__.get(arg_node.arg, _MISSING)
            if ann is not _MISSING:
                decl_ty = _t.resolve_annotation(ann, owner=self.minfo.func)
                shape = self._conform_param(shape, decl_ty, arg_node.arg)
            env.vars[arg_node.arg] = shape
            env.decl[arg_node.arg] = shape.ty
            shaped_args.append(shape)
        self.param_names = [a.arg for a in args[1:]]
        self.arg_shapes = shaped_args

        body, _, terminated = self._lower_block(self.tree.body, env, None)
        if self.ret_type is None:
            self.ret_type = _t.VOID
            self.ret_shape = None
        if self.ret_type is not _t.VOID and not terminated:
            raise self._err(
                "method returns a value on some paths but falls off the end "
                "on others"
            )
        return ir.FuncIR(
            symbol="",  # assigned by the specializer
            method=self.minfo,
            self_shape=self.self_shape,
            param_names=self.param_names,
            param_shapes=self.arg_shapes,
            ret_type=self.ret_type,
            ret_shape=self.ret_shape,
            body=body,
            is_device=self.device,
            is_kernel=is_global_kernel(self.minfo.func),
        )

    def _conform_param(self, shape: Shape, decl_ty: _t.Type, pname: str) -> Shape:
        """Check/convert an argument shape against the declared parameter
        type (numeric conversion is the caller's job; here we validate)."""
        if isinstance(decl_ty, _t.PrimType):
            if not isinstance(shape, PrimShape):
                raise self._err(f"parameter {pname}: expected {decl_ty}, got {shape!r}")
            if shape.ty is not decl_ty:
                const = decl_ty(shape.const) if shape.const is not None else None
                return PrimShape(decl_ty, const=const)
            return shape
        if isinstance(decl_ty, _t.ArrayType):
            if not isinstance(shape, ArrayShape) or shape.ty is not decl_ty:
                raise self._err(
                    f"parameter {pname}: expected {decl_ty!r}, got {shape!r}"
                )
            return shape
        if isinstance(decl_ty, _t.ClassType):
            if not isinstance(shape, ObjShape) or not shape.cls.is_subclass_of(
                decl_ty.info
            ):
                raise self._err(
                    f"parameter {pname}: expected (a subclass of) "
                    f"{decl_ty.info.name}, got {shape!r}"
                )
            return shape
        raise self._err(f"parameter {pname}: unsupported declared type {decl_ty!r}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _lower_block(self, stmts, env: _Env, loop: Optional[_LoopCtx]):
        """Returns (ir_stmts, env, terminated)."""
        out: list[ir.Stmt] = []
        terminated = False
        for i, stmt in enumerate(stmts):
            if terminated:
                raise self._err("unreachable code after return/break/continue", stmt)
            if (
                i == 0
                and isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                continue  # docstring
            lowered, terminated = self._lower_stmt(stmt, env, loop)
            out.extend(lowered)
        return out, env, terminated

    def _lower_stmt(self, stmt, env: _Env, loop: Optional[_LoopCtx]):
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise self._err("chained assignment not supported", stmt)
            return self._lower_assign(stmt.targets[0], stmt.value, env, node=stmt), False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                raise self._err("bare annotations not supported in methods", stmt)
            decl = _t.resolve_annotation(
                ast.unparse(stmt.annotation)
                if isinstance(stmt.annotation, ast.AST)
                else stmt.annotation,
                owner=self.minfo.func,
            )
            return (
                self._lower_assign(stmt.target, stmt.value, env, node=stmt, decl=decl),
                False,
            )
        if isinstance(stmt, ast.AugAssign):
            op = _BINOPS.get(type(stmt.op))
            if op is None:
                raise self._err("unsupported augmented assignment operator", stmt)
            load_tgt = _as_load(stmt.target)
            bin_node = ast.BinOp(left=load_tgt, op=stmt.op, right=stmt.value)
            ast.copy_location(bin_node, stmt)
            ast.fix_missing_locations(bin_node)
            return self._lower_assign(stmt.target, bin_node, env, node=stmt), False
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, env, loop)
        if isinstance(stmt, ast.For):
            return self._lower_for(stmt, env)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, env)
        if isinstance(stmt, ast.Return):
            return self._lower_return(stmt, env)
        if isinstance(stmt, ast.Expr):
            expr = self._lower_expr(stmt.value, env)
            return [ir.ExprStmt(expr)], False
        if isinstance(stmt, ast.Break):
            if loop is None:
                raise self._err("break outside loop", stmt)
            loop.break_envs.append(env.copy())
            return [ir.Break()], True
        if isinstance(stmt, ast.Continue):
            if loop is None:
                raise self._err("continue outside loop", stmt)
            loop.continue_envs.append(env.copy())
            return [ir.Continue()], True
        if isinstance(stmt, ast.Pass):
            return [], False
        raise self._err(
            f"unsupported statement {type(stmt).__name__}", stmt
        )

    def _lower_assign(self, target, value_node, env: _Env, *, node, decl=None):
        value = self._lower_expr(value_node, env)
        if isinstance(target, ast.Name):
            name = target.id
            if name in env.decl and name not in env.vars:
                # dropped at a merge: conditionally-assigned local being
                # re-established; treat as fresh declaration
                del env.decl[name]
            if name not in env.decl:
                decl_ty = decl if decl is not None else value.ty
                if decl_ty is _t.VOID:
                    raise self._err("cannot assign a void expression", node)
                value = self._convert(value, decl_ty, node)
                rules.check_strict_final_shape(value.shape, f"local {name!r}")
                env.decl[name] = decl_ty
                env.vars[name] = value.shape
                return [ir.LocalDecl(name, decl_ty, value)]
            decl_ty = env.decl[name]
            if decl is not None and decl is not decl_ty:
                raise self._err(
                    f"local {name!r} re-annotated with a different type", node
                )
            value = self._convert(value, decl_ty, node)
            rules.check_strict_final_shape(value.shape, f"local {name!r}")
            env.vars[name] = value.shape
            return [ir.Assign(name, decl_ty, value)]
        if isinstance(target, ast.Subscript):
            arr = self._lower_expr(target.value, env)
            if not isinstance(arr.ty, _t.ArrayType):
                raise self._err("subscript store on a non-array value", node)
            index = self._convert(self._lower_expr(target.slice, env), _t.I64, node)
            value = self._convert(value, arr.ty.elem, node)
            return [ir.ArrayStore(arr, index, value)]
        if isinstance(target, ast.Attribute):
            obj = self._lower_expr(target.value, env)
            if not isinstance(obj.shape, ObjShape):
                raise self._err("attribute store on a non-object value", node)
            fshape = obj.shape.field(target.attr)
            if not isinstance(fshape, ArrayShape):
                raise CodingRuleViolation(
                    f"store to non-array field {target.attr!r}: semi-immutable "
                    f"objects allow mutation of array-typed fields only",
                    rule=1,
                    where=self.src.where(node),
                )
            if not obj.shape.from_snapshot:
                raise CodingRuleViolation(
                    f"array-field store to {target.attr!r} on a locally-"
                    f"constructed object: copies are passed by value, so the "
                    f"store would be invisible to the caller; mutate fields "
                    f"reachable from the entry receiver instead",
                    rule=1,
                    where=self.src.where(node),
                )
            if value.ty is not fshape.ty:
                raise self._err(
                    f"type mismatch storing to field {target.attr!r}: "
                    f"{value.ty!r} into {fshape.ty!r}",
                    node,
                )
            return [ir.FieldStore(obj, target.attr, value)]
        raise self._err("unsupported assignment target", node)

    def _lower_if(self, stmt: ast.If, env: _Env, loop):
        cond = self._lower_expr(stmt.test, env)
        cond = self._to_bool(cond, stmt)
        then_env = env.copy()
        then_body, then_env, then_term = self._lower_block(stmt.body, then_env, loop)
        else_env = env.copy()
        else_body, else_env, else_term = self._lower_block(stmt.orelse, else_env, loop)
        if then_term and else_term:
            merged, terminated = env, True  # join unreachable; keep env as-is
        elif then_term:
            merged, terminated = else_env, False
        elif else_term:
            merged, terminated = then_env, False
        else:
            merged = then_env.merge_with(else_env, where=self.src.where(stmt))
            terminated = False
        env.vars = merged.vars
        env.decl = merged.decl
        return [ir.If(cond, then_body, else_body)], terminated

    def _loop_fixpoint(self, body_stmts, env: _Env, seed_fn):
        """Iterate lowering the loop body until shapes stabilize.

        ``seed_fn(env)`` installs loop-carried bindings (the for-loop
        variable).  Returns (stable entry env, body_ir, loop_ctx).
        """
        entry = env.copy()
        seed_fn(entry)
        for _ in range(64):
            trial = entry.copy()
            loop = _LoopCtx()
            self._lower_block(list(body_stmts), trial, loop)
            merged = entry
            for cont_env in loop.continue_envs + [trial]:
                merged = merged.merge_with(cont_env, where="loop back-edge")
            seed_fn(merged)
            if merged.same_as(entry):
                break
            entry = merged
        else:  # pragma: no cover - lattice depth is tiny
            raise TypeFlowError("loop shape analysis did not converge")
        final_env = entry.copy()
        loop = _LoopCtx()
        body_ir, _, _ = self._lower_block(list(body_stmts), final_env, loop)
        return entry, body_ir, loop

    def _lower_for(self, stmt: ast.For, env: _Env):
        if stmt.orelse:
            raise self._err("for-else not supported", stmt)
        if not (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
        ):
            raise self._err("for loops iterate over range(...) only", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise self._err("for-loop target must be a simple name", stmt)
        var = stmt.target.id
        rargs = [self._convert(self._lower_expr(a, env), _t.I64, stmt) for a in stmt.iter.args]
        if len(rargs) == 1:
            start, stop, step = ir.Const(0, _t.I64), rargs[0], None
        elif len(rargs) == 2:
            start, stop, step = rargs[0], rargs[1], None
        elif len(rargs) == 3:
            start, stop, step = rargs
        else:
            raise self._err("range() takes 1-3 arguments", stmt)
        if var in env.decl and env.decl[var] is not _t.I64:
            raise self._err(f"loop variable {var!r} conflicts with a local", stmt)

        def seed(e: _Env):
            e.vars[var] = PrimShape(_t.I64)
            e.decl[var] = _t.I64

        entry, body_ir, loop = self._loop_fixpoint(stmt.body, env, seed)
        post = entry
        for benv in loop.break_envs:
            post = post.merge_with(benv, where="loop exit")
        env.vars = post.vars
        env.decl = post.decl
        return [ir.ForRange(var, start, stop, step, body_ir)], False

    def _lower_while(self, stmt: ast.While, env: _Env):
        if stmt.orelse:
            raise self._err("while-else not supported", stmt)
        entry, body_ir, loop = self._loop_fixpoint(stmt.body, env, lambda e: None)
        cond_env = entry.copy()
        cond = self._to_bool(self._lower_expr(stmt.test, cond_env), stmt)
        post = entry
        for benv in loop.break_envs:
            post = post.merge_with(benv, where="loop exit")
        env.vars = post.vars
        env.decl = post.decl
        return [ir.While(cond, body_ir)], False

    def _lower_return(self, stmt: ast.Return, env: _Env):
        if stmt.value is None:
            value = None
            ty: _t.Type = _t.VOID
            shape = None
        else:
            value = self._lower_expr(stmt.value, env)
            if self.ret_annotation is not None and isinstance(
                self.ret_annotation, _t.PrimType
            ):
                value = self._convert(value, self.ret_annotation, stmt)
            ty = value.ty
            shape = value.shape
            if shape is not None:
                rules.check_strict_final_shape(shape, "return value")
        if self.ret_type is None:
            self.ret_type = ty
            self.ret_shape = shape
        else:
            if (self.ret_type is _t.VOID) != (ty is _t.VOID):
                raise self._err("mixing value and bare returns", stmt)
            if ty is not _t.VOID:
                if isinstance(ty, _t.PrimType) and isinstance(self.ret_type, _t.PrimType):
                    if ty is not self.ret_type:
                        value = self._convert(value, self.ret_type, stmt)
                        ty, shape = value.ty, value.shape
                self.ret_shape = merge_shapes(self.ret_shape, shape, where="return")
                if self.ret_type is not ty:
                    raise self._err(
                        f"conflicting return types {self.ret_type!r} vs {ty!r}", stmt
                    )
        return [ir.Return(value)], True

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _lower_expr(self, node, env: _Env) -> ir.Expr:
        if isinstance(node, ast.Constant):
            return self._lower_const(node)
        if isinstance(node, ast.Name):
            return self._lower_name(node, env)
        if isinstance(node, ast.Attribute):
            return self._lower_attribute(node, env)
        if isinstance(node, ast.BinOp):
            return self._lower_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self._lower_unary(node, env)
        if isinstance(node, ast.Compare):
            return self._lower_compare(node, env)
        if isinstance(node, ast.BoolOp):
            values = [self._to_bool(self._lower_expr(v, env), node) for v in node.values]
            op = "and" if isinstance(node.op, ast.And) else "or"
            return ir.BoolOp(op, values)
        if isinstance(node, ast.Call):
            return self._lower_call(node, env)
        if isinstance(node, ast.Subscript):
            arr = self._lower_expr(node.value, env)
            if not isinstance(arr.ty, _t.ArrayType):
                raise self._err("subscript on a non-array value", node)
            index = self._convert(self._lower_expr(node.slice, env), _t.I64, node)
            return ir.ArrayLoad(arr, index)
        raise self._err(f"unsupported expression {type(node).__name__}", node)

    def _lower_const(self, node: ast.Constant) -> ir.Expr:
        v = node.value
        if isinstance(v, bool):
            return ir.Const(v, _t.BOOL)
        if isinstance(v, int):
            return ir.Const(v, _t.I64)
        if isinstance(v, float):
            return ir.Const(v, _t.F64)
        raise self._err(
            f"unsupported literal {v!r} (strings may appear only as intrinsic "
            f"labels)",
            node,
        )

    def _lower_name(self, node: ast.Name, env: _Env) -> ir.Expr:
        name = node.id
        if name in env.vars:
            shape = env.vars[name]
            return ir.LocalRef(name, shape.ty, shape)
        obj = self._resolve_static(name)
        if obj is _MISSING:
            raise self._err(f"unknown name {name!r}", node)
        if isinstance(obj, bool):
            return ir.Const(obj, _t.BOOL)
        if isinstance(obj, int):
            return ir.Const(obj, _t.I64)
        if isinstance(obj, float):
            return ir.Const(obj, _t.F64)
        raise self._err(
            f"name {name!r} resolves to {type(obj).__name__}, which cannot be "
            f"used as a value here",
            node,
        )

    def _lower_attribute(self, node: ast.Attribute, env: _Env) -> ir.Expr:
        # object field load / static class attribute
        base = node.value
        if isinstance(base, ast.Name) and base.id not in env.vars:
            static = self._resolve_static(base.id)
            if isinstance(static, type) and _t.wootin_info(static) is not None:
                value = getattr(static, node.attr, _MISSING)
                if value is _MISSING or not isinstance(value, (bool, int, float)):
                    raise self._err(
                        f"{base.id}.{node.attr} is not a constant static field",
                        node,
                    )
                return self._const_of(value)
        obj = self._lower_expr(base, env)
        if not isinstance(obj.shape, ObjShape):
            raise self._err(
                f"attribute access {node.attr!r} on non-object value", node
            )
        if node.attr in obj.shape.fields:
            return ir.FieldLoad(obj, node.attr)
        # fall back to a class-level constant (static field, rule 5)
        value = getattr(obj.shape.cls.pycls, node.attr, _MISSING)
        if isinstance(value, (bool, int, float)):
            return self._const_of(value)
        raise self._err(
            f"class {obj.shape.cls.name} has no field or constant "
            f"{node.attr!r}",
            node,
        )

    def _const_of(self, value) -> ir.Const:
        if isinstance(value, bool):
            return ir.Const(value, _t.BOOL)
        if isinstance(value, int):
            return ir.Const(value, _t.I64)
        return ir.Const(value, _t.F64)

    def _lower_binop(self, node: ast.BinOp, env: _Env) -> ir.Expr:
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise self._err(
                f"unsupported operator {type(node.op).__name__}", node
            )
        left = self._lower_expr(node.left, env)
        right = self._lower_expr(node.right, env)
        for side in (left, right):
            if not (isinstance(side.ty, _t.PrimType) and side.ty is not _t.BOOL):
                raise self._err(
                    f"operator {op!r} needs numeric operands, got {side.ty!r}",
                    node,
                )
        if op == "/":
            res = _t.F64
        elif op == "**":
            res = _t.F64
        else:
            res = _t.promote(left.ty, right.ty)
        out = ir.BinOp(op, left, right, res)
        # constant folding (the paper folds immutable field values; folding
        # arithmetic on them lets grid strides become literals)
        ls, rs = left.shape, right.shape
        if (
            isinstance(ls, PrimShape)
            and isinstance(rs, PrimShape)
            and ls.const is not None
            and rs.const is not None
        ):
            try:
                folded = _fold_binop(op, ls.const, rs.const, res)
            except (ZeroDivisionError, OverflowError, ValueError):
                folded = None
            if folded is not None:
                out.shape = PrimShape(res, const=folded)
        return out

    def _lower_unary(self, node: ast.UnaryOp, env: _Env) -> ir.Expr:
        operand = self._lower_expr(node.operand, env)
        if isinstance(node.op, ast.USub):
            if not isinstance(operand.ty, _t.PrimType) or operand.ty is _t.BOOL:
                raise self._err("unary minus needs a numeric operand", node)
            out = ir.UnaryOp("-", operand, operand.ty)
            s = operand.shape
            if isinstance(s, PrimShape) and s.const is not None:
                out.shape = PrimShape(operand.ty, const=operand.ty(-s.const))
            return out
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Not):
            operand = self._to_bool(operand, node)
            return ir.UnaryOp("not", operand, _t.BOOL)
        raise self._err(f"unsupported unary operator", node)

    def _lower_compare(self, node: ast.Compare, env: _Env) -> ir.Expr:
        operands = [self._lower_expr(x, env) for x in [node.left] + node.comparators]
        parts = []
        for i, op_node in enumerate(node.ops):
            op = _CMPOPS.get(type(op_node))
            if op is None:
                raise self._err(
                    f"unsupported comparison {type(op_node).__name__}", node
                )
            l, r = operands[i], operands[i + 1]
            for side in (l, r):
                if not isinstance(side.ty, _t.PrimType):
                    raise self._err("comparisons need primitive operands", node)
            parts.append(ir.Compare(op, l, r))
        if len(parts) == 1:
            return parts[0]
        return ir.BoolOp("and", parts)

    def _to_bool(self, expr: ir.Expr, node) -> ir.Expr:
        if expr.ty is _t.BOOL:
            return expr
        if isinstance(expr.ty, _t.PrimType):
            zero = ir.Const(0, expr.ty) if not expr.ty.is_float else ir.Const(0.0, expr.ty)
            return ir.Compare("!=", expr, zero)
        raise self._err("condition must be a primitive value", node)

    def _convert(self, expr: ir.Expr, to_ty: _t.Type, node) -> ir.Expr:
        if expr.ty is to_ty:
            return expr
        if isinstance(to_ty, _t.PrimType) and isinstance(expr.ty, _t.PrimType):
            if to_ty is _t.BOOL or expr.ty is _t.BOOL:
                raise self._err(
                    f"no implicit conversion between {expr.ty!r} and {to_ty!r}",
                    node,
                )
            if isinstance(expr, ir.Const):
                return ir.Const(to_ty(expr.value), to_ty)
            return ir.Cast(expr, to_ty)
        if isinstance(to_ty, _t.ClassType) and isinstance(expr.ty, _t.ClassType):
            if expr.ty.info.is_subclass_of(to_ty.info):
                return expr  # upcast: representation is shape-driven
        raise self._err(f"cannot convert {expr.ty!r} to {to_ty!r}", node)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _attr_chain(self, node) -> Optional[tuple[str, tuple[str, ...]]]:
        """Decompose Attribute chains rooted at a Name: a.b.c -> ('a', ('b','c'))."""
        path: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            path.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            return cur.id, tuple(reversed(path))
        return None

    def _lower_call(self, node: ast.Call, env: _Env) -> ir.Expr:
        if node.keywords:
            raise self._err("keyword arguments not supported", node)
        func = node.func
        # --- plain-name calls: casts, constructors, builtins, FFI ---------
        if isinstance(func, ast.Name):
            return self._lower_name_call(node, func.id, env)
        if not isinstance(func, ast.Attribute):
            raise self._err("unsupported call form", node)
        # --- intrinsic roots (MPI.x, cuda.x, wjmath.x, math.x, wj.x) ------
        chain = self._attr_chain(func)
        if chain is not None:
            root_name, path = chain
            if root_name not in env.vars:
                root = self._resolve_static(root_name)
                if root is not _MISSING and intrinsic_registry.is_intrinsic_root(root):
                    spec = intrinsic_registry.lookup(root, path)
                    if spec is None:
                        raise self._err(
                            f"unknown intrinsic {root_name}.{'.'.join(path)}",
                            node,
                        )
                    return self._lower_intrinsic(spec, node, env)
                if isinstance(root, ForeignFunction) and not path:
                    pass  # handled as Name call; unreachable here
        # --- guest method call --------------------------------------------
        recv = self._lower_expr(func.value, env)
        if not isinstance(recv.shape, ObjShape):
            raise self._err(
                f"method call {func.attr!r} on non-object value of type "
                f"{recv.ty!r}",
                node,
            )
        return self._lower_method_call(recv, func.attr, node, env)

    def _lower_name_call(self, node: ast.Call, name: str, env: _Env) -> ir.Expr:
        args_nodes = node.args
        if name in env.vars:
            raise self._err(f"cannot call local value {name!r}", node)
        obj = self._resolve_static(name)
        if isinstance(obj, _t.PrimType):
            if len(args_nodes) != 1:
                raise self._err(f"{name}() takes one argument", node)
            value = self._lower_expr(args_nodes[0], env)
            if not isinstance(value.ty, _t.PrimType):
                raise self._err("cast of a non-primitive value", node)
            return ir.Cast(value, obj)
        if obj is float or obj is int:
            to = _t.F64 if obj is float else _t.I64
            if len(args_nodes) != 1:
                raise self._err(f"{name}() takes one argument", node)
            value = self._lower_expr(args_nodes[0], env)
            return ir.Cast(value, to)
        if obj is len:
            if len(args_nodes) != 1:
                raise self._err("len() takes one argument", node)
            arr = self._lower_expr(args_nodes[0], env)
            if not isinstance(arr.ty, _t.ArrayType):
                raise self._err("len() of a non-array value", node)
            return ir.ArrayLen(arr)
        if obj is abs or obj is min or obj is max:
            return self._lower_builtin_math(name, obj, args_nodes, node, env)
        if isinstance(obj, ForeignFunction):
            spec = intrinsic_registry.lookup(obj, ())
            return self._lower_ffi(spec, obj, node, env)
        if isinstance(obj, type):
            info = _t.wootin_info(obj)
            if info is not None:
                args = [self._lower_expr(a, env) for a in args_nodes]
                return self._lower_new(info, args, node)
        raise self._err(f"cannot call {name!r}", node)

    def _lower_builtin_math(self, name, obj, args_nodes, node, env) -> ir.Expr:
        args = [self._lower_expr(a, env) for a in args_nodes]
        for a in args:
            if not isinstance(a.ty, _t.PrimType) or a.ty is _t.BOOL:
                raise self._err(f"{name}() needs numeric arguments", node)
        if obj is abs:
            if len(args) != 1:
                raise self._err("abs() takes one argument", node)
            res = args[0].ty
            return ir.IntrinsicCall("builtin.abs", args, res)
        if len(args) != 2:
            raise self._err(f"{name}() takes exactly two arguments here", node)
        res = _t.promote(args[0].ty, args[1].ty)
        args = [self._convert(a, res, node) for a in args]
        return ir.IntrinsicCall(f"builtin.{name}", args, res)

    def _lower_ffi(self, spec, ff: ForeignFunction, node: ast.Call, env: _Env) -> ir.Expr:
        args = [self._lower_expr(a, env) for a in node.args]
        if len(args) != len(ff.param_types):
            raise self._err(
                f"foreign {ff.name} expects {len(ff.param_types)} args", node
            )
        conv = []
        for a, ty in zip(args, ff.param_types):
            if isinstance(ty, _t.PrimType):
                conv.append(self._convert(a, ty, node))
            else:
                if a.ty is not ty:
                    raise self._err(
                        f"foreign {ff.name}: expected {ty!r}, got {a.ty!r}", node
                    )
                conv.append(a)
        return ir.IntrinsicCall(spec.key, conv, ff.ret_type, const_args=(ff,))

    def _lower_intrinsic(self, spec, node: ast.Call, env: _Env) -> ir.Expr:
        # split compile-time-constant head arguments from runtime arguments
        const_args = []
        rt_nodes = list(node.args)
        for _ in range(spec.const_head):
            if not rt_nodes:
                raise self._err(f"{spec.key}: missing constant argument", node)
            cnode = rt_nodes.pop(0)
            const_args.append(self._lower_const_arg(cnode, spec, node))
        args = [self._lower_expr(a, env) for a in rt_nodes]
        if self.device and spec.key.startswith("mpi."):
            raise self._err("MPI calls are not allowed inside GPU kernels", node)
        if not self.device and spec.key.startswith("cuda.tid"):
            raise self._err(
                f"{spec.key} is only meaningful inside @global_kernel code",
                node,
            )
        ret_inputs = list(const_args) + [a.ty for a in args]
        ret = spec.ret_type(ret_inputs)
        # numeric conversion for math intrinsics: everything goes through f64
        if spec.key.startswith("math."):
            args = [self._convert(a, _t.F64, node) for a in args]
        return ir.IntrinsicCall(spec.key, args, ret, const_args=tuple(const_args))

    def _lower_const_arg(self, cnode, spec, node):
        if isinstance(cnode, ast.Constant) and isinstance(cnode.value, str):
            return cnode.value
        if isinstance(cnode, ast.Name):
            obj = self._resolve_static(cnode.id)
            if isinstance(obj, _t.PrimType):
                return obj
        raise self._err(
            f"{spec.key}: argument must be a compile-time constant (string "
            f"label or primitive type)",
            node,
        )

    def _lower_method_call(self, recv: ir.Expr, mname: str, node: ast.Call, env: _Env) -> ir.Expr:
        shape: ObjShape = recv.shape
        minfo = shape.cls.find_method(mname)
        if minfo is None:
            raise self._err(
                f"class {shape.cls.name} has no method {mname!r}", node
            )
        args = [self._lower_expr(a, env) for a in node.args]
        args = self._conform_args(minfo, args, node)
        arg_shapes = [a.shape for a in args]
        if is_global_kernel(minfo.func):
            if self.device:
                raise self._err(
                    "kernel launch inside device code is not supported", node
                )
            if not args:
                raise self._err(
                    "@global_kernel methods take a CudaConfig first", node
                )
            config = args[0]
            from repro.cuda.dim import CudaConfig  # local import: avoid cycle

            cfg_info = _t.wootin_info(CudaConfig)
            if not (
                isinstance(config.shape, ObjShape)
                and config.shape.cls.is_subclass_of(cfg_info)
            ):
                raise self._err(
                    "first argument of a kernel launch must be a CudaConfig",
                    node,
                )
            # the kernel is specialized with its full signature (including
            # the CudaConfig parameter, which the body may read but the
            # launch machinery interprets)
            target = self.engine.specialize(minfo, shape, arg_shapes, device=True)
            if target.ret_type is not _t.VOID:
                raise self._err("@global_kernel methods must return None", node)
            return ir.KernelLaunch(
                target=target,
                recv=recv,
                config=config,
                args=args,
                site_id=self.engine.new_site_id(),
                method_name=mname,
            )
        from repro.lang.annotations import is_device_fn

        if is_device_fn(minfo.func) and not self.device:
            raise self._err(
                f"{shape.cls.name}.{mname} is marked @device_fn and may only "
                f"be called from GPU kernel code",
                node,
            )
        target = self.engine.specialize(minfo, shape, arg_shapes, device=self.device)
        static_cls = _dispatch_interface(shape.cls, mname)
        return ir.Call(
            target=target,
            recv=recv,
            args=args,
            site_id=self.engine.new_site_id(),
            static_cls=static_cls,
            method_name=mname,
        )

    def _conform_args(self, minfo, args, node):
        """Apply declared-parameter numeric conversions at the call site."""
        hints = getattr(minfo.func, "__annotations__", {})
        src = method_ast(minfo.func)
        pnames = [a.arg for a in src.tree.args.args][1:]
        if len(pnames) != len(args):
            raise self._err(
                f"{minfo} expects {len(pnames)} arguments, got {len(args)}",
                node,
            )
        out = []
        for pname, arg in zip(pnames, args):
            ann = hints.get(pname, _MISSING)
            if ann is not _MISSING:
                ty = _t.resolve_annotation(ann, owner=minfo.func)
                if isinstance(ty, _t.PrimType):
                    arg = self._convert(arg, ty, node)
            out.append(arg)
        return out

    # ------------------------------------------------------------------
    # constructor abstract interpretation (NewObj)
    # ------------------------------------------------------------------

    def _lower_new(self, info: _t.ClassInfo, args: list, node) -> ir.Expr:
        rules.check_class(info)
        field_inits: dict[str, ir.Expr] = {}
        self._interp_ctor(info, args, field_inits, node, depth=0)
        fields = {name: e.shape for name, e in field_inits.items()}
        obj_shape = ObjShape(info, fields, root_path=None)
        return ir.NewObj(info, field_inits, obj_shape)

    def _interp_ctor(self, info: _t.ClassInfo, args, field_inits, node, depth):
        if depth > 32:
            raise self._err("constructor chain too deep", node)
        ctor = info.find_method("__init__")
        if ctor is None:
            if args:
                raise self._err(
                    f"{info.name} has no constructor but got arguments", node
                )
            return
        src = method_ast(ctor.func)
        rules.check_ctor_source(src)
        pnames = [a.arg for a in src.tree.args.args][1:]
        if len(pnames) != len(args):
            raise self._err(
                f"{info.name}() expects {len(pnames)} arguments, got {len(args)}",
                node,
            )
        hints = getattr(ctor.func, "__annotations__", {})
        subst: dict[str, ir.Expr] = {}
        for pname, arg in zip(pnames, args):
            ann = hints.get(pname, _MISSING)
            if ann is not _MISSING:
                ty = _t.resolve_annotation(ann, owner=ctor.func)
                if isinstance(ty, _t.PrimType):
                    arg = self._convert(arg, ty, node)
                elif isinstance(ty, _t.ClassType):
                    if not (
                        isinstance(arg.shape, ObjShape)
                        and arg.shape.cls.is_subclass_of(ty.info)
                    ):
                        raise self._err(
                            f"{info.name}() parameter {pname!r}: expected "
                            f"{ty.info.name}, got {arg.ty!r}",
                            node,
                        )
            subst[pname] = arg
        for stmt in src.tree.body:
            self._interp_ctor_stmt(ctor, stmt, subst, field_inits, node, depth)

    def _interp_ctor_stmt(self, ctor, stmt, subst, field_inits, node, depth):
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            return  # docstring
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "__init__"
                and isinstance(call.func.value, ast.Call)
                and isinstance(call.func.value.func, ast.Name)
                and call.func.value.func.id == "super"
            ):
                owner = ctor.owner
                if not owner.bases:
                    raise self._err(
                        f"super().__init__ in {owner.name} but no @wootin base",
                        node,
                    )
                base = owner.bases[0]
                sup_args = [self._interp_ctor_expr(a, subst, node) for a in call.args]
                self._interp_ctor(base, sup_args, field_inits, node, depth + 1)
                return
            raise self._err("calls in constructors are limited to super().__init__", node)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            target = stmt.targets[0] if isinstance(stmt, ast.Assign) else stmt.target
            if isinstance(stmt, ast.Assign) and len(stmt.targets) != 1:
                raise self._err("chained assignment in constructor", node)
            value = self._interp_ctor_expr(stmt.value, subst, node)
            if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) and target.value.id == "self":
                fname = target.attr
                decl = ctor.owner.all_field_decls().get(fname)
                if decl is not None and isinstance(decl, _t.PrimType):
                    value = self._convert(value, decl, node)
                field_inits[fname] = value
                return
            if isinstance(target, ast.Name):
                subst[target.id] = value
                return
            raise self._err("unsupported constructor assignment target", node)
        if isinstance(stmt, ast.Pass):
            return
        raise self._err(
            f"unsupported constructor statement {type(stmt).__name__}", node
        )

    def _interp_ctor_expr(self, expr_node, subst, node) -> ir.Expr:
        """Lower a constructor expression with parameters substituted by the
        caller's argument expressions (constructor inlining)."""
        env = _Env()
        # wrap substitution as a pseudo-env by pre-binding names to shapes and
        # replacing LocalRefs afterwards
        for name, e in subst.items():
            env.vars[name] = e.shape
            env.decl[name] = e.ty
        lowered = self._lower_expr(expr_node, env)
        return _substitute_locals(lowered, subst)


def _substitute_locals(expr: ir.Expr, subst: dict) -> ir.Expr:
    """Replace LocalRef leaves by the bound expressions (ctor inlining)."""
    if isinstance(expr, ir.LocalRef):
        return subst.get(expr.name, expr)
    for attr in ("obj", "arr", "index", "left", "right", "operand", "value", "recv", "config"):
        child = getattr(expr, attr, None)
        if isinstance(child, ir.Expr):
            setattr(expr, attr, _substitute_locals(child, subst))
    if isinstance(expr, (ir.Call, ir.IntrinsicCall, ir.KernelLaunch)):
        expr.args = [_substitute_locals(a, subst) for a in expr.args]
    if isinstance(expr, ir.BoolOp):
        expr.values = [_substitute_locals(v, subst) for v in expr.values]
    if isinstance(expr, ir.NewObj):
        expr.field_inits = {
            k: _substitute_locals(v, subst) for k, v in expr.field_inits.items()
        }
    return expr


def _dispatch_interface(cls: _t.ClassInfo, mname: str) -> _t.ClassInfo:
    """The topmost ancestor declaring ``mname`` — the paper's dispatch
    interface for the virtual-call comparator mode."""
    best = cls
    cur = cls
    stack = [cls]
    while stack:
        cur = stack.pop()
        if mname in cur.methods:
            best = cur
        stack.extend(cur.bases)
    return best


def _fold_binop(op: str, a, b, res: _t.PrimType):
    """Fold a constant binary op, or return None to decline.

    Guest semantics place arithmetic faults at *run* time, so a constant
    zero divisor must not raise here at translation time — the expression
    is left unfolded and the backends evaluate (and fault) when the
    program runs.  ``**`` declines whenever Python's result would not be
    exact under the result type: a negative constant exponent under an
    integer result would fold a float into an int slot, and huge exponents
    would eat memory folding numbers no kernel means to embed.
    """
    if op in ("/", "//", "%") and b == 0:
        return None  # runtime ZeroDivisionError, not a translation error
    if op == "**":
        if b < 0 and not res.is_float:
            return None  # int ** -n is a float; don't fold under int
        if abs(b) > 1024:
            return None
    if op == "+":
        v = a + b
    elif op == "-":
        v = a - b
    elif op == "*":
        v = a * b
    elif op == "/":
        v = a / b
    elif op == "//":
        v = a // b
    elif op == "%":
        v = a % b
    elif op == "**":
        v = a ** b
    else:  # pragma: no cover
        return None
    return res(v)


def lower_method(engine, minfo, self_shape, arg_shapes, *, device=False) -> ir.FuncIR:
    """Public entry: lower one method for one specialization."""
    return Lowerer(engine, minfo, self_shape, arg_shapes, device=device).lower()


_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
}

_CMPOPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}

_MISSING = object()


def _as_load(node):
    """Copy an assignment target as a Load-context expression."""
    new = ast.parse(ast.unparse(node), mode="eval").body
    ast.copy_location(new, node)
    ast.fix_missing_locations(new)
    return new

"""Coding-rule checker (paper §3.2).

Two layers of checking exist:

* the *syntactic* checks in this module — applied to every ``@wootin`` class
  and method AST before lowering (ternary, reference equality, exception
  handling, parameter reassignment, constructor restrictions, static-field
  constancy, and the rest of rules 3, 5, 7, 8);
* the *typed* checks embedded in lowering and specialization — strict-final
  locals/returns (rule 2), array-only field mutation (semi-immutability,
  definition 3c), recursion (rule 6, detected on the specialization stack),
  and concrete-type determinability (rule 1/4, which manifests as a
  :class:`~repro.errors.TypeFlowError` when violated).

Everything raises :class:`~repro.errors.CodingRuleViolation` subclasses with
the paper's rule number attached.
"""

from __future__ import annotations

import ast

from repro.errors import CodingRuleViolation, NotSemiImmutable, NotStrictFinal
from repro.frontend.shapes import ArrayShape, ObjShape, PrimShape, Shape
from repro.frontend.source import SourceInfo, method_ast
from repro.lang import types as _t

__all__ = [
    "check_class",
    "check_method_source",
    "check_ctor_source",
    "check_strict_final_shape",
    "check_strict_final_class",
]

_BANNED_NAMES = frozenset(
    {
        "isinstance",
        "issubclass",
        "getattr",
        "setattr",
        "hasattr",
        "delattr",
        "eval",
        "exec",
        "type",
        "id",
        "open",
        "print",
        "input",
        "super",  # outside constructors
        "vars",
        "globals",
        "locals",
    }
)

# Node types banned by rule 8 (exceptions, reflection, threading, IO, ...)
# and by the general "no dynamic features" stance of the subset.
_BANNED_NODES: tuple[tuple[type, str, int], ...] = (
    (ast.IfExp, "the conditional operator (x if c else y)", 7),
    (ast.Try, "exception handling", 8),
    (ast.Raise, "raising exceptions", 8),
    (ast.With, "context managers", 8),
    (ast.Lambda, "lambda expressions", 8),
    (ast.ListComp, "comprehensions", 8),
    (ast.SetComp, "comprehensions", 8),
    (ast.DictComp, "comprehensions", 8),
    (ast.GeneratorExp, "generator expressions", 8),
    (ast.Yield, "generators", 8),
    (ast.YieldFrom, "generators", 8),
    (ast.Await, "async constructs", 8),
    (ast.AsyncFunctionDef, "async constructs", 8),
    (ast.Global, "global statements", 5),
    (ast.Nonlocal, "nonlocal statements", 8),
    (ast.Import, "imports inside methods", 8),
    (ast.ImportFrom, "imports inside methods", 8),
    (ast.ClassDef, "nested classes", 8),
    (ast.Delete, "del statements", 8),
    (ast.Starred, "starred expressions", 8),
    (ast.List, "list literals (arrays come from wj.zeros or parameters)", 8),
    (ast.Dict, "dict literals", 8),
    (ast.Set, "set literals", 8),
    (ast.Slice, "array slicing", 8),
    (ast.NamedExpr, "walrus assignments", 8),
    (ast.Assert, "assert statements", 8),
)


def _violation(msg: str, rule: int, src: SourceInfo, node: ast.AST) -> CodingRuleViolation:
    return CodingRuleViolation(msg, rule=rule, where=src.where(node))


def _annotation_nodes(tree: ast.AST) -> set[int]:
    """ids of every AST node inside a type annotation (annotations are
    metadata, exempt from expression rules — e.g. ``-> None``)."""
    out: set[int] = set()
    for node in ast.walk(tree):
        anns = []
        if isinstance(node, ast.FunctionDef):
            anns.append(node.returns)
            for a in node.args.args:
                anns.append(a.annotation)
        elif isinstance(node, ast.AnnAssign):
            anns.append(node.annotation)
        for ann in anns:
            if ann is not None:
                out.update(id(n) for n in ast.walk(ann))
    return out


def _check_banned_constructs(src: SourceInfo, tree: ast.AST, *, in_ctor: bool) -> None:
    exempt = _annotation_nodes(tree)
    for node in ast.walk(tree):
        if id(node) in exempt:
            continue
        for node_ty, what, rule in _BANNED_NODES:
            if isinstance(node, node_ty):
                raise _violation(f"{what} not allowed in translated code", rule, src, node)
        if isinstance(node, ast.Compare):
            for op in node.ops:
                if isinstance(op, (ast.Is, ast.IsNot)):
                    raise _violation(
                        "reference equality (is / is not) not allowed", 7, src, node
                    )
                if isinstance(op, (ast.In, ast.NotIn)):
                    raise _violation("membership tests not allowed", 8, src, node)
        if isinstance(node, ast.Constant):
            if node.value is None:
                raise _violation("the None literal is not allowed", 8, src, node)
            if isinstance(node.value, (bytes, complex)):
                raise _violation(
                    f"{type(node.value).__name__} literals not allowed", 8, src, node
                )
            if isinstance(node.value, str) and not _is_allowed_string(node):
                # strings are only allowed as constant labels of intrinsic
                # calls (wj.output) and as docstrings; lowering enforces
                # usage, here we only ban obviously-dynamic uses.
                pass
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in _BANNED_NAMES and not (in_ctor and node.id == "super"):
                raise _violation(
                    f"use of {node.id!r} not allowed (reflection/IO/dynamic "
                    f"features are outside the subset)",
                    8,
                    src,
                    node,
                )
        if isinstance(node, ast.FunctionDef) and node is not tree:
            raise _violation("nested function definitions not allowed", 8, src, node)


def _is_allowed_string(node: ast.Constant) -> bool:
    return True  # usage-checked during lowering


def _param_names(tree: ast.FunctionDef) -> list[str]:
    args = tree.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
        raise CodingRuleViolation(
            "only plain positional parameters are supported", rule=8
        )
    if args.defaults:
        raise CodingRuleViolation("default parameter values are not supported", rule=8)
    return [a.arg for a in args.args]


def check_method_source(src: SourceInfo) -> None:
    """Syntactic rule check for a non-constructor guest method."""
    tree = src.tree
    _check_banned_constructs(src, tree, in_ctor=False)
    params = set(_param_names(tree))
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        for tgt in targets:
            if isinstance(tgt, ast.Name) and tgt.id in params:
                raise _violation(
                    f"method parameter {tgt.id!r} reassigned; all parameters "
                    f"are constant",
                    3,
                    src,
                    node,
                )
            if isinstance(tgt, ast.Tuple):
                raise _violation("tuple unpacking not allowed", 8, src, node)


def check_ctor_source(src: SourceInfo) -> None:
    """Constructor restrictions (semi-immutability, definition 3d).

    Constructors must be straight-line: no branches, loops, ternaries, or
    method calls — except a single ``super().__init__(...)`` — and ``self``
    may appear only as the target of field initializations.
    """
    tree = src.tree
    _check_banned_constructs(src, tree, in_ctor=True)
    params = _param_names(tree)
    if not params or params[0] != "self":
        raise CodingRuleViolation(
            "constructor must take self first", rule=0, where=src.where(tree)
        )
    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.For, ast.While)):
            raise _violation(
                "conditional branches and loops are not allowed in "
                "constructors",
                0,
                src,
                node,
            )
        if isinstance(node, ast.Call):
            if _is_super_init_call(node):
                continue
            func = node.func
            # Allowed calls: constructing nested objects (Name callee that is
            # not a banned builtin) and primitive casts; ordinary *method*
            # calls are banned.  Typed validation happens during abstract
            # interpretation in lowering.
            if isinstance(func, ast.Attribute):
                if isinstance(func.value, ast.Call) and _is_super_call(func.value):
                    continue  # the __init__ attribute of super()
                raise _violation(
                    "method calls are not allowed in constructors",
                    0,
                    src,
                    node,
                )
    # self only as "self.field = ..." target or super().__init__ implicit
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == "self":
            if not _self_use_ok(tree, node):
                raise _violation(
                    "self may only be used as 'self.field = ...' in "
                    "constructors",
                    0,
                    src,
                    node,
                )


def _self_use_ok(tree: ast.FunctionDef, name_node: ast.Name) -> bool:
    """self is OK when it is the value of an Attribute in a Store context
    (``self.f = ...``)."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.value is name_node
            and isinstance(node.ctx, ast.Store)
        ):
            return True
    return False


def _is_super_call(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Name)
        and node.func.id == "super"
        and not node.args
        and not node.keywords
    )


def _is_super_init_call(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "__init__"
        and isinstance(node.func.value, ast.Call)
        and _is_super_call(node.func.value)
    )


# ---------------------------------------------------------------------------
# Class-level checks
# ---------------------------------------------------------------------------

_checked_classes: set[int] = set()


def check_class(info: _t.ClassInfo) -> None:
    """Rule 5 (constant scalar static fields) + constructor checks, cached."""
    if id(info) in _checked_classes:
        return
    _checked_classes.add(id(info))
    for base in info.bases:
        check_class(base)
    for name, value in vars(info.pycls).items():
        if name.startswith("__") or callable(value) or name == "_abc_impl":
            continue
        if isinstance(value, (staticmethod, classmethod, property)):
            continue
        if not isinstance(value, (int, float, bool)):
            raise CodingRuleViolation(
                f"static field {info.name}.{name} must be a constant scalar "
                f"(int/float/bool); arrays and objects are not allowed",
                rule=5,
                where=info.qualname,
            )
    ctor = info.methods.get("__init__")
    if ctor is not None:
        check_ctor_source(method_ast(ctor.func))


def check_strict_final_class(info: _t.ClassInfo, _stack: tuple = ()) -> None:
    """Static strict-final check from declared field types (used by rule 2
    diagnostics; the authoritative check is shape-based)."""
    if info in _stack:
        raise NotSemiImmutable(
            f"class {info.name} is recursively typed", rule=0, where=info.qualname
        )
    if not info.final:
        raise NotStrictFinal(
            f"class {info.name} has subclasses "
            f"({[c.name for c in info.subclasses]}) and is not strict-final",
            rule=2,
            where=info.qualname,
        )
    for fname, fty in info.all_field_decls().items():
        _check_strict_final_type(fty, f"{info.name}.{fname}", _stack + (info,))


def _check_strict_final_type(ty: _t.Type, where: str, stack: tuple) -> None:
    if isinstance(ty, _t.PrimType):
        return
    if isinstance(ty, _t.ArrayType):
        _check_strict_final_type(ty.elem, where, stack)
        return
    if isinstance(ty, _t.ClassType):
        check_strict_final_class(ty.info, stack)
        return
    raise NotStrictFinal(f"type {ty!r} at {where} is not strict-final", rule=2)


def check_strict_final_shape(shape: Shape, where: str) -> None:
    """Shape-based strict-final check: every object reachable from the shape
    must be of a leaf class (the authoritative rule-2 check, applied to
    locals, returns, and casts during lowering)."""
    if isinstance(shape, PrimShape):
        return
    if isinstance(shape, ArrayShape):
        return
    if isinstance(shape, ObjShape):
        if not shape.cls.final:
            raise NotStrictFinal(
                f"value at {where} has non-leaf class {shape.cls.name} "
                f"(subclasses: {[c.name for c in shape.cls.subclasses]}); "
                f"locals, returns, and casts must be strict-final",
                rule=2,
                where=where,
            )
        for fname, fshape in shape.fields.items():
            check_strict_final_shape(fshape, f"{where}.{fname}")
        return
    raise NotStrictFinal(f"unsupported shape at {where}", rule=2)

"""Runtime object-graph snapshot.

WootinJ's JIT "receives not only the entry method but also the arguments
passed to the entry method" (§3.3) and derives every concrete type — and,
thanks to semi-immutability, every non-array field *value* — from them.  This
module performs that capture: given the live entry receiver and arguments, it
produces :class:`~repro.frontend.shapes.Shape` trees plus the flattened list
of array parameters that will cross into the translated memory space.

Aliasing is preserved: if the same NumPy array is reachable through two
paths, both resolve to the same entry slot (and hence the same single copy).
Recursive object graphs violate semi-immutability (definition 3e) and are
rejected.
"""

from __future__ import annotations

import numpy as np

from repro.errors import JitError, NotSemiImmutable
from repro.frontend.shapes import ArrayShape, ObjShape, PrimShape, Shape
from repro.lang import types as _t

__all__ = ["ArraySlot", "Snapshot", "snapshot_args"]


class ArraySlot:
    """One flattened entry array parameter."""

    def __init__(self, index: int, path: str, array: np.ndarray, elem: _t.PrimType):
        self.index = index
        self.path = path
        self.array = array
        self.elem = elem

    def __repr__(self) -> str:
        return f"<ArraySlot {self.index} {self.path} {self.elem!r}[{self.array.size}]>"


class Snapshot:
    """The full capture for one JIT request."""

    def __init__(self):
        self.array_slots: list[ArraySlot] = []
        self._alias: dict[int, int] = {}  # id(ndarray) -> slot index
        self._visiting: set[int] = set()
        # snapshot objects in discovery order: (path, ObjShape); backends
        # materialize globals in exactly this order.
        self.objects: list[tuple[str, ObjShape]] = []

    # -- capture ----------------------------------------------------------

    def capture(self, value, path: str) -> Shape:
        if isinstance(value, bool):  # bool before int: bool is an int subclass
            return PrimShape(_t.BOOL, const=value)
        if isinstance(value, int):
            return PrimShape(_t.I64, const=value)
        if isinstance(value, float):
            return PrimShape(_t.F64, const=value)
        if isinstance(value, np.bool_):
            return PrimShape(_t.BOOL, const=bool(value))
        if isinstance(value, np.integer):
            prim = _t.prim_for_dtype(value.dtype)
            return PrimShape(prim, const=int(value))
        if isinstance(value, np.floating):
            prim = _t.prim_for_dtype(value.dtype)
            return PrimShape(prim, const=float(value))
        if isinstance(value, np.ndarray):
            return self._capture_array(value, path)
        info = _t.wootin_info(type(value))
        if info is not None:
            return self._capture_object(value, info, path)
        raise JitError(
            f"value at {path} has unsupported type {type(value).__name__}; "
            f"only primitives, 1-D NumPy arrays, and @wootin objects can "
            f"cross into translated code"
        )

    def _capture_array(self, arr: np.ndarray, path: str) -> ArrayShape:
        if arr.ndim != 1:
            raise JitError(
                f"array at {path} has ndim={arr.ndim}; the guest language has "
                f"1-D arrays only (use indexer classes for multi-d data, as "
                f"the paper's class library does)"
            )
        elem = _t.prim_for_dtype(arr.dtype)
        slot = self._alias.get(id(arr))
        if slot is None:
            if not arr.flags.c_contiguous:
                raise JitError(f"array at {path} must be C-contiguous")
            slot = len(self.array_slots)
            self.array_slots.append(ArraySlot(slot, path, arr, elem))
            self._alias[id(arr)] = slot
        # the captured size is part of the shape: it keys specialization
        # and lets the mid-end prove accesses in-bounds (docs/CFG.md)
        return ArrayShape(_t.ArrayType(elem), slot=slot, length=int(arr.size))

    def _capture_object(self, obj, info: _t.ClassInfo, path: str) -> ObjShape:
        if id(obj) in self._visiting:
            raise NotSemiImmutable(
                f"object graph at {path} is recursive; semi-immutable types "
                f"must not be recursive",
                rule=0,
                where=path,
            )
        self._visiting.add(id(obj))
        decls = info.all_field_decls()
        try:
            fields: dict[str, Shape] = {}
            for fname, fval in vars(obj).items():
                shape = self.capture(fval, f"{path}.{fname}")
                fields[fname] = self._conform_field(
                    shape, decls.get(fname), f"{path}.{fname}"
                )
        finally:
            self._visiting.discard(id(obj))
        shape = ObjShape(info, fields, root_path=path)
        self.objects.append((path, shape))
        return shape

    @staticmethod
    def _conform_field(shape: Shape, decl, where: str) -> Shape:
        """Honor declared field types: a Python float stored in an ``f32``
        field is an f32 constant (matching Java's typed fields); declared
        array/class types are validated against the runtime value."""
        if decl is None:
            return shape
        if isinstance(decl, _t.PrimType):
            if not isinstance(shape, PrimShape):
                raise JitError(f"field {where}: declared {decl!r}, got {shape!r}")
            if shape.ty is decl:
                return shape
            if decl is _t.BOOL or shape.ty is _t.BOOL:
                raise JitError(
                    f"field {where}: cannot coerce {shape.ty!r} to {decl!r}"
                )
            return PrimShape(decl, const=decl(shape.const))
        if isinstance(decl, _t.ArrayType):
            if not isinstance(shape, ArrayShape) or shape.ty is not decl:
                raise JitError(
                    f"field {where}: declared {decl!r}, got {shape!r} — array "
                    f"dtype must match the declaration"
                )
            return shape
        if isinstance(decl, _t.ClassType):
            if not isinstance(shape, ObjShape) or not shape.cls.is_subclass_of(
                decl.info
            ):
                raise JitError(
                    f"field {where}: declared {decl.info.name}, got {shape!r}"
                )
            return shape
        return shape


def snapshot_args(receiver, args) -> tuple[Snapshot, ObjShape, list[Shape]]:
    """Capture the entry receiver and arguments (the paper's recorded
    ``jit4mpi`` arguments)."""
    snap = Snapshot()
    recv_shape = snap.capture(receiver, "self")
    if not isinstance(recv_shape, ObjShape):
        raise JitError("the JIT entry receiver must be a @wootin object")
    arg_shapes = [snap.capture(a, f"arg{i}") for i, a in enumerate(args)]
    return snap, recv_shape, arg_shapes

"""IR verifier + optimization statistics.

``verify_program`` walks every specialized function after lowering and
checks the invariants the backends rely on:

* every expression carries a type, and (for non-void) a consistent shape;
* every ``LocalRef`` refers to a parameter or an assigned local;
* every ``Call``/``KernelLaunch`` passes exactly the callee's runtime
  parameters, with assignable shapes;
* array indices are integers; stores match element types (modulo the
  C-style conversions lowering inserted);
* device functions contain no MPI intrinsics, host functions no thread
  geometry.

It also gathers :class:`OptStats` — how much object orientation the
translation removed (the quantities the paper's optimization discussion in
§3 is about).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BackendError
from repro.frontend import ir
from repro.frontend.shapes import ArrayShape, ObjShape, PrimShape
from repro.lang import types as _t
from repro.obs.trace import span as _span

__all__ = ["OptStats", "verify_func", "verify_program"]


@dataclass
class OptStats:
    """What devirtualization + object inlining removed."""

    devirtualized_calls: int = 0     # dynamic dispatches turned into direct calls
    kernel_launches: int = 0
    inlined_constructions: int = 0   # NewObj sites (constructor inlining)
    snapshot_field_loads: int = 0    # field loads resolved from the snapshot
    folded_constants: int = 0        # expressions with known constant values
    intrinsic_calls: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _Verifier:
    def __init__(self, func_ir: ir.FuncIR, stats: OptStats):
        self.f = func_ir
        self.stats = stats
        self.locals: set[str] = {"self", *func_ir.param_names}

    def fail(self, msg: str) -> None:
        raise BackendError(f"IR verification failed in {self.f.symbol}: {msg}")

    # -- statements -------------------------------------------------------

    def block(self, stmts) -> None:
        for s in stmts:
            self.stmt(s)

    def stmt(self, s: ir.Stmt) -> None:
        if isinstance(s, (ir.LocalDecl, ir.Assign)):
            self.expr(s.value)
            self.locals.add(s.name)
            if s.decl_ty is _t.VOID:
                self.fail(f"void-typed local {s.name!r}")
        elif isinstance(s, ir.FieldStore):
            self.expr(s.obj)
            self.expr(s.value)
            oshape = s.obj.shape
            if not (isinstance(oshape, ObjShape) and oshape.from_snapshot):
                self.fail("FieldStore on a non-snapshot object")
            if not isinstance(oshape.field(s.fname), ArrayShape):
                self.fail(f"FieldStore to non-array field {s.fname!r}")
        elif isinstance(s, ir.ArrayStore):
            self.expr(s.arr)
            self.expr(s.index)
            self.expr(s.value)
            if not isinstance(s.arr.ty, _t.ArrayType):
                self.fail("ArrayStore on a non-array value")
            if not (isinstance(s.index.ty, _t.PrimType) and not s.index.ty.is_float):
                self.fail("non-integer array index")
        elif isinstance(s, ir.If):
            self.expr(s.cond)
            self.block(s.then)
            self.block(s.orelse)
        elif isinstance(s, ir.ForRange):
            for e in (s.start, s.stop, *( [s.step] if s.step is not None else [] )):
                self.expr(e)
            self.locals.add(s.var)
            self.block(s.body)
        elif isinstance(s, ir.While):
            self.expr(s.cond)
            self.block(s.body)
        elif isinstance(s, ir.Return):
            if s.value is not None:
                self.expr(s.value)
                if self.f.ret_type is _t.VOID:
                    self.fail("value returned from a void function")
            elif self.f.ret_type is not _t.VOID:
                self.fail("bare return in a non-void function")
        elif isinstance(s, ir.ExprStmt):
            self.expr(s.value)
        elif isinstance(s, (ir.Break, ir.Continue)):
            pass
        else:
            self.fail(f"unknown statement {type(s).__name__}")

    # -- expressions --------------------------------------------------------

    def expr(self, e: ir.Expr) -> None:
        if e.ty is None:
            self.fail(f"untyped expression {type(e).__name__}")
        s = e.shape
        if isinstance(s, PrimShape) and s.const is not None:
            self.stats.folded_constants += 1
        if isinstance(e, ir.LocalRef):
            if e.name not in self.locals:
                self.fail(f"reference to unassigned local {e.name!r}")
        elif isinstance(e, ir.FieldLoad):
            self.expr(e.obj)
            oshape = e.obj.shape
            if not isinstance(oshape, ObjShape):
                self.fail("FieldLoad on a non-object value")
            if oshape.from_snapshot:
                self.stats.snapshot_field_loads += 1
        elif isinstance(e, (ir.ArrayLoad,)):
            self.expr(e.arr)
            self.expr(e.index)
            if not isinstance(e.arr.ty, _t.ArrayType):
                self.fail("ArrayLoad on a non-array value")
        elif isinstance(e, ir.ArrayLen):
            self.expr(e.arr)
        elif isinstance(e, (ir.BinOp, ir.Compare)):
            self.expr(e.left)
            self.expr(e.right)
        elif isinstance(e, ir.UnaryOp):
            self.expr(e.operand)
        elif isinstance(e, ir.BoolOp):
            for v in e.values:
                self.expr(v)
        elif isinstance(e, ir.Cast):
            self.expr(e.value)
        elif isinstance(e, ir.Call):
            self._check_call(e)
        elif isinstance(e, ir.KernelLaunch):
            self._check_launch(e)
        elif isinstance(e, ir.IntrinsicCall):
            self.stats.intrinsic_calls += 1
            if self.f.is_device and e.key.startswith("mpi."):
                self.fail(f"MPI intrinsic {e.key} inside device code")
            if not self.f.is_device and e.key.startswith("cuda.tid"):
                self.fail(f"thread intrinsic {e.key} in host code")
            for a in e.args:
                self.expr(a)
        elif isinstance(e, ir.NewObj):
            self.stats.inlined_constructions += 1
            want = set(e.obj_shape.fields)
            got = set(e.field_inits)
            if want != got:
                self.fail(f"NewObj field mismatch: {want} vs {got}")
            for v in e.field_inits.values():
                self.expr(v)
        elif isinstance(e, ir.Const):
            pass
        else:
            self.fail(f"unknown expression {type(e).__name__}")

    def _check_call(self, e: ir.Call) -> None:
        self.stats.devirtualized_calls += 1
        callee = e.target.func_ir
        if callee is None:
            self.fail("call to an unlowered specialization")
        if callee.is_device and not self.f.is_device:
            self.fail("host function calls a device function directly")
        if e.recv is not None:
            self.expr(e.recv)
        if len(e.args) != len(callee.param_shapes):
            self.fail(
                f"arity mismatch calling {e.target.symbol}: "
                f"{len(e.args)} vs {len(callee.param_shapes)}"
            )
        for a in e.args:
            self.expr(a)

    def _check_launch(self, e: ir.KernelLaunch) -> None:
        self.stats.kernel_launches += 1
        callee = e.target.func_ir
        if not callee.is_device:
            self.fail("kernel launch targets a host specialization")
        self.expr(e.config)
        if e.recv is not None:
            self.expr(e.recv)
        for a in e.args:
            self.expr(a)


def verify_func(func_ir, stats: OptStats | None = None) -> OptStats:
    """Verify one specialized function (types/shapes/def-before-use).

    This is the re-check the optimizer pipeline runs after every pass —
    a pass that breaks an invariant raises :class:`BackendError` here
    instead of miscompiling silently in a backend."""
    stats = stats if stats is not None else OptStats()
    _Verifier(func_ir, stats).block(func_ir.body)
    return stats


def verify_program(program) -> OptStats:
    """Verify every specialization; returns aggregated optimization stats."""
    stats = OptStats()
    with _span("frontend.verify") as sp:
        for spec in program.specializations:
            _Verifier(spec.func_ir, stats).block(spec.func_ir.body)
        sp.set(n_specializations=len(program.specializations),
               devirtualized_calls=stats.devirtualized_calls)
    return stats

"""Guest-source capture.

The paper's WootinJ reads Java *bytecode*, so it needs no source.  Python has
no comparably analyzable bytecode contract, so we read the method source via
``inspect`` and parse it with ``ast`` — the analysis level is the same
(method bodies of ``@wootin`` classes), only the carrier differs.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from repro.errors import LoweringError

__all__ = ["method_ast", "SourceInfo"]

_CACHE: dict[object, "SourceInfo"] = {}


class SourceInfo:
    """Parsed source of one guest function."""

    def __init__(self, func):
        # @global_kernel wraps the original in an interpreted-launch shim;
        # analysis always works on the underlying kernel body.
        func = getattr(func, "__wj_kernel_impl__", func)
        self.func = func
        try:
            src = inspect.getsource(func)
        except (OSError, TypeError) as exc:
            raise LoweringError(
                f"cannot retrieve source of {func!r}; guest methods must be "
                f"defined in importable modules"
            ) from exc
        src = textwrap.dedent(src)
        module = ast.parse(src)
        if not module.body or not isinstance(module.body[0], ast.FunctionDef):
            raise LoweringError(f"unexpected source structure for {func!r}")
        self.tree: ast.FunctionDef = module.body[0]
        self.filename = getattr(func, "__code__", None) and func.__code__.co_filename
        self.firstlineno = getattr(func, "__code__", None) and func.__code__.co_firstlineno
        self.globals = getattr(func, "__globals__", {})

    def where(self, node: ast.AST | None = None) -> str:
        """Human-readable source location for error messages."""
        line = ""
        if node is not None and hasattr(node, "lineno") and self.firstlineno:
            # method source was dedented and re-parsed from line 1
            line = f":{self.firstlineno + node.lineno - 1}"
        return f"{self.func.__qualname__} ({self.filename}{line})"


def method_ast(func) -> SourceInfo:
    """Parse (and cache) the AST of a guest function."""
    info = _CACHE.get(func)
    if info is None:
        info = SourceInfo(func)
        _CACHE[func] = info
    return info

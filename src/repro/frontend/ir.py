"""Typed intermediate representation.

Lowering (``repro.frontend.lower``) turns guest Python ASTs into this IR with
every expression carrying both its guest :class:`~repro.lang.types.Type`
(``.ty``) and its :class:`~repro.frontend.shapes.Shape` (``.shape``).  By the
time IR exists, *devirtualization has already happened*: every method call is
a :class:`Call` with a resolved specialization target, and every object
reference has a statically-known concrete class — exactly the property the
paper's coding rules are designed to guarantee.

Representation conventions shared by the backends:

* **snapshot objects** (reachable from the entry receiver/arguments; the
  paper's semi-immutable composed object) are materialized as global
  singletons and referenced by pointer, so that their *array-typed* fields —
  the only mutable state the rules permit — behave with reference semantics
  (double buffering needs this);
* **dynamic objects** (constructed inside translated code) have value
  semantics: copies are stored and passed, which the paper notes is sound
  because such objects are immutable.  Array-field stores on dynamic objects
  are rejected by the rule checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang import types as _t
from repro.frontend.shapes import ArrayShape, ObjShape, PrimShape, Shape

__all__ = [
    "Expr", "Stmt", "FuncIR",
    "Const", "LocalRef", "FieldLoad", "ArrayLoad", "ArrayLen", "BinOp",
    "UnaryOp", "Compare", "BoolOp", "Cast", "Call", "IntrinsicCall",
    "NewObj", "KernelLaunch",
    "LocalDecl", "Assign", "FieldStore", "ArrayStore", "If", "ForRange",
    "While", "Return", "ExprStmt", "Break", "Continue",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    ty: _t.Type = field(init=False, default=None)  # set by subclasses
    shape: Optional[Shape] = field(init=False, default=None)


@dataclass
class Const(Expr):
    value: object
    prim: _t.PrimType

    def __post_init__(self):
        self.ty = self.prim
        self.shape = PrimShape(self.prim, const=self.value)


@dataclass
class LocalRef(Expr):
    """Reference to a local variable or parameter."""

    name: str
    ref_ty: _t.Type
    ref_shape: Shape

    def __post_init__(self):
        self.ty = self.ref_ty
        self.shape = self.ref_shape


@dataclass
class FieldLoad(Expr):
    obj: Expr
    fname: str

    def __post_init__(self):
        obj_shape = self.obj.shape
        assert isinstance(obj_shape, ObjShape), obj_shape
        self.shape = obj_shape.field(self.fname)
        self.ty = self.shape.ty


@dataclass
class ArrayLoad(Expr):
    arr: Expr
    index: Expr

    def __post_init__(self):
        assert isinstance(self.arr.ty, _t.ArrayType)
        self.ty = self.arr.ty.elem
        self.shape = PrimShape(self.ty)


@dataclass
class ArrayLen(Expr):
    arr: Expr

    def __post_init__(self):
        self.ty = _t.I64
        self.shape = PrimShape(_t.I64)


@dataclass
class BinOp(Expr):
    """Arithmetic. op in {+,-,*,/,//,%,**}; result type precomputed by
    lowering with C-style promotion (``/`` always yields f64, ``//`` and
    ``%`` follow Python floor semantics in both backends)."""

    op: str
    left: Expr
    right: Expr
    res: _t.PrimType

    def __post_init__(self):
        self.ty = self.res
        self.shape = PrimShape(self.res)


@dataclass
class UnaryOp(Expr):
    op: str  # '-' | 'not'
    operand: Expr
    res: _t.PrimType

    def __post_init__(self):
        self.ty = self.res
        self.shape = PrimShape(self.res)


@dataclass
class Compare(Expr):
    op: str  # '<' '<=' '>' '>=' '==' '!='
    left: Expr
    right: Expr

    def __post_init__(self):
        self.ty = _t.BOOL
        self.shape = PrimShape(_t.BOOL)


@dataclass
class BoolOp(Expr):
    op: str  # 'and' | 'or'  (short-circuit)
    values: list

    def __post_init__(self):
        self.ty = _t.BOOL
        self.shape = PrimShape(_t.BOOL)


@dataclass
class Cast(Expr):
    value: Expr
    to: _t.PrimType

    def __post_init__(self):
        self.ty = self.to
        const = None
        vs = self.value.shape
        if isinstance(vs, PrimShape) and vs.const is not None:
            const = self.to(vs.const)
        self.shape = PrimShape(self.to, const=const)


@dataclass
class Call(Expr):
    """A devirtualized (direct) call to a specialized guest method.

    ``target`` is a ``Specialization`` (see :mod:`repro.jit.specialize`)
    carrying the emitted symbol name and the callee's return shape.
    ``site_id`` identifies the call site for the VIRTUAL backend mode, which
    re-introduces dynamic dispatch through a runtime-initialized
    function-pointer table to model the paper's "C++ with virtual functions"
    comparator.  ``static_cls`` is the receiver's *declared* class — the
    dispatch interface.
    """

    target: object
    recv: Optional[Expr]
    args: list
    site_id: int
    static_cls: Optional[_t.ClassInfo]
    method_name: str

    def __post_init__(self):
        self.ty = self.target.ret_type
        self.shape = self.target.ret_shape


@dataclass
class IntrinsicCall(Expr):
    """MPI/CUDA/math/FFI/utility intrinsic (paper §3 'Multiplatform')."""

    key: str
    args: list
    res_ty: _t.Type
    const_args: tuple = ()  # leading compile-time-constant arguments

    def __post_init__(self):
        self.ty = self.res_ty
        if isinstance(self.res_ty, _t.PrimType):
            self.shape = PrimShape(self.res_ty)
        elif isinstance(self.res_ty, _t.ArrayType):
            self.shape = ArrayShape(self.res_ty)
        else:
            self.shape = None


@dataclass
class NewObj(Expr):
    """Object construction with the constructor abstractly pre-executed.

    The coding rules make constructors straight-line field initializations,
    so lowering evaluates them symbolically: ``field_inits`` maps every field
    to the initializing expression.  Backends emit a struct value (or, in
    VIRTUAL mode, a boxed allocation) — this is the paper's constructor
    inlining (§3.3 "Constructors").
    """

    cls: _t.ClassInfo
    field_inits: dict
    obj_shape: ObjShape

    def __post_init__(self):
        self.ty = self.cls.type
        self.shape = self.obj_shape


@dataclass
class KernelLaunch(Expr):
    """A call to a ``@global_kernel`` method — a CUDA kernel launch.

    ``config`` evaluates to a CudaConfig object shape (grid/block extents);
    ``target`` is the kernel body's specialization compiled in device mode.
    The launch is an expression of type void (statement position only).
    """

    target: object
    recv: Optional[Expr]
    config: Expr
    args: list
    site_id: int
    method_name: str

    def __post_init__(self):
        self.ty = _t.VOID
        self.shape = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    pass


@dataclass
class LocalDecl(Stmt):
    """First assignment of a local: declares it with its strict-final type."""

    name: str
    decl_ty: _t.Type
    value: Expr


@dataclass
class Assign(Stmt):
    name: str
    decl_ty: _t.Type
    value: Expr


@dataclass
class FieldStore(Stmt):
    """Store to an *array-typed* field of a snapshot object (the only field
    mutation the rules allow — e.g. double-buffer swapping)."""

    obj: Expr
    fname: str
    value: Expr


@dataclass
class ArrayStore(Stmt):
    arr: Expr
    index: Expr
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: list
    orelse: list


@dataclass
class ForRange(Stmt):
    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr]  # None means +1
    body: list


@dataclass
class While(Stmt):
    cond: Expr
    body: list


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class ExprStmt(Stmt):
    value: Expr


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------

@dataclass
class FuncIR:
    """One specialized guest method, lowered and devirtualized."""

    symbol: str                      # mangled emission name
    method: object                   # MethodInfo
    self_shape: Optional[ObjShape]   # None for kernels' implicit config recv? no: self of method
    param_names: list                # guest parameter names (excluding self)
    param_shapes: list               # Shape per parameter
    ret_type: _t.Type
    ret_shape: Optional[Shape]
    body: list                       # list[Stmt]
    is_device: bool = False          # compiled for GPU (__device__/__global__)
    is_kernel: bool = False          # the @global_kernel entry itself


def walk_exprs(node):
    """Yield every Expr in a statement list / expression tree (pre-order)."""
    if isinstance(node, list):
        for item in node:
            yield from walk_exprs(item)
        return
    if isinstance(node, Expr):
        yield node
        children = []
        if isinstance(node, FieldLoad):
            children = [node.obj]
        elif isinstance(node, ArrayLoad):
            children = [node.arr, node.index]
        elif isinstance(node, ArrayLen):
            children = [node.arr]
        elif isinstance(node, BinOp):
            children = [node.left, node.right]
        elif isinstance(node, UnaryOp):
            children = [node.operand]
        elif isinstance(node, Compare):
            children = [node.left, node.right]
        elif isinstance(node, BoolOp):
            children = node.values
        elif isinstance(node, Cast):
            children = [node.value]
        elif isinstance(node, Call):
            children = ([node.recv] if node.recv is not None else []) + node.args
        elif isinstance(node, IntrinsicCall):
            children = node.args
        elif isinstance(node, NewObj):
            children = list(node.field_inits.values())
        elif isinstance(node, KernelLaunch):
            children = ([node.recv] if node.recv is not None else []) + [node.config] + node.args
        for child in children:
            yield from walk_exprs(child)
        return
    if isinstance(node, Stmt):
        if isinstance(node, (LocalDecl, Assign)):
            yield from walk_exprs(node.value)
        elif isinstance(node, FieldStore):
            yield from walk_exprs(node.obj)
            yield from walk_exprs(node.value)
        elif isinstance(node, ArrayStore):
            for child in (node.arr, node.index, node.value):
                yield from walk_exprs(child)
        elif isinstance(node, If):
            yield from walk_exprs(node.cond)
            yield from walk_exprs(node.then)
            yield from walk_exprs(node.orelse)
        elif isinstance(node, ForRange):
            yield from walk_exprs(node.start)
            yield from walk_exprs(node.stop)
            if node.step is not None:
                yield from walk_exprs(node.step)
            yield from walk_exprs(node.body)
        elif isinstance(node, While):
            yield from walk_exprs(node.cond)
            yield from walk_exprs(node.body)
        elif isinstance(node, Return):
            if node.value is not None:
                yield from walk_exprs(node.value)
        elif isinstance(node, ExprStmt):
            yield from walk_exprs(node.value)

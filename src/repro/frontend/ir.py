"""Typed intermediate representation.

Lowering (``repro.frontend.lower``) turns guest Python ASTs into this IR with
every expression carrying both its guest :class:`~repro.lang.types.Type`
(``.ty``) and its :class:`~repro.frontend.shapes.Shape` (``.shape``).  By the
time IR exists, *devirtualization has already happened*: every method call is
a :class:`Call` with a resolved specialization target, and every object
reference has a statically-known concrete class — exactly the property the
paper's coding rules are designed to guarantee.

Representation conventions shared by the backends:

* **snapshot objects** (reachable from the entry receiver/arguments; the
  paper's semi-immutable composed object) are materialized as global
  singletons and referenced by pointer, so that their *array-typed* fields —
  the only mutable state the rules permit — behave with reference semantics
  (double buffering needs this);
* **dynamic objects** (constructed inside translated code) have value
  semantics: copies are stored and passed, which the paper notes is sound
  because such objects are immutable.  Array-field stores on dynamic objects
  are rejected by the rule checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang import types as _t
from repro.frontend.shapes import ArrayShape, ObjShape, PrimShape, Shape

__all__ = [
    "Expr", "Stmt", "FuncIR",
    "Const", "LocalRef", "FieldLoad", "ArrayLoad", "ArrayLen", "BinOp",
    "UnaryOp", "Compare", "BoolOp", "Cast", "Call", "IntrinsicCall",
    "NewObj", "KernelLaunch",
    "LocalDecl", "Assign", "FieldStore", "ArrayStore", "If", "ForRange",
    "While", "Return", "ExprStmt", "Break", "Continue",
    "expr_children", "map_expr", "rewrite_stmt_exprs", "stmt_blocks",
    "stmt_exprs", "assigned_names", "walk_exprs",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    ty: _t.Type = field(init=False, default=None)  # set by subclasses
    shape: Optional[Shape] = field(init=False, default=None)


@dataclass
class Const(Expr):
    value: object
    prim: _t.PrimType

    def __post_init__(self):
        self.ty = self.prim
        self.shape = PrimShape(self.prim, const=self.value)


@dataclass
class LocalRef(Expr):
    """Reference to a local variable or parameter."""

    name: str
    ref_ty: _t.Type
    ref_shape: Shape

    def __post_init__(self):
        self.ty = self.ref_ty
        self.shape = self.ref_shape


@dataclass
class FieldLoad(Expr):
    obj: Expr
    fname: str

    def __post_init__(self):
        obj_shape = self.obj.shape
        assert isinstance(obj_shape, ObjShape), obj_shape
        self.shape = obj_shape.field(self.fname)
        self.ty = self.shape.ty


@dataclass
class ArrayLoad(Expr):
    arr: Expr
    index: Expr
    #: set by the bounds-check-elimination pass (repro.opt.cfg.ranges) when
    #: the index is provably within [0, len(arr)); emitters may then skip
    #: the REPRO_BOUNDS guard for this access
    bounds_ok: bool = field(init=False, default=False, compare=False)

    def __post_init__(self):
        assert isinstance(self.arr.ty, _t.ArrayType)
        self.ty = self.arr.ty.elem
        self.shape = PrimShape(self.ty)


@dataclass
class ArrayLen(Expr):
    arr: Expr

    def __post_init__(self):
        self.ty = _t.I64
        self.shape = PrimShape(_t.I64)


@dataclass
class BinOp(Expr):
    """Arithmetic. op in {+,-,*,/,//,%,**}; result type precomputed by
    lowering with C-style promotion (``/`` always yields f64, ``//`` and
    ``%`` follow Python floor semantics in both backends)."""

    op: str
    left: Expr
    right: Expr
    res: _t.PrimType

    def __post_init__(self):
        self.ty = self.res
        self.shape = PrimShape(self.res)


@dataclass
class UnaryOp(Expr):
    op: str  # '-' | 'not'
    operand: Expr
    res: _t.PrimType

    def __post_init__(self):
        self.ty = self.res
        self.shape = PrimShape(self.res)


@dataclass
class Compare(Expr):
    op: str  # '<' '<=' '>' '>=' '==' '!='
    left: Expr
    right: Expr

    def __post_init__(self):
        self.ty = _t.BOOL
        self.shape = PrimShape(_t.BOOL)


@dataclass
class BoolOp(Expr):
    op: str  # 'and' | 'or'  (short-circuit)
    values: list

    def __post_init__(self):
        self.ty = _t.BOOL
        self.shape = PrimShape(_t.BOOL)


@dataclass
class Cast(Expr):
    value: Expr
    to: _t.PrimType

    def __post_init__(self):
        self.ty = self.to
        const = None
        vs = self.value.shape
        if isinstance(vs, PrimShape) and vs.const is not None:
            const = self.to(vs.const)
        self.shape = PrimShape(self.to, const=const)


@dataclass
class Call(Expr):
    """A devirtualized (direct) call to a specialized guest method.

    ``target`` is a ``Specialization`` (see :mod:`repro.jit.specialize`)
    carrying the emitted symbol name and the callee's return shape.
    ``site_id`` identifies the call site for the VIRTUAL backend mode, which
    re-introduces dynamic dispatch through a runtime-initialized
    function-pointer table to model the paper's "C++ with virtual functions"
    comparator.  ``static_cls`` is the receiver's *declared* class — the
    dispatch interface.
    """

    target: object
    recv: Optional[Expr]
    args: list
    site_id: int
    static_cls: Optional[_t.ClassInfo]
    method_name: str

    def __post_init__(self):
        self.ty = self.target.ret_type
        self.shape = self.target.ret_shape


@dataclass
class IntrinsicCall(Expr):
    """MPI/CUDA/math/FFI/utility intrinsic (paper §3 'Multiplatform')."""

    key: str
    args: list
    res_ty: _t.Type
    const_args: tuple = ()  # leading compile-time-constant arguments

    def __post_init__(self):
        self.ty = self.res_ty
        if isinstance(self.res_ty, _t.PrimType):
            self.shape = PrimShape(self.res_ty)
        elif isinstance(self.res_ty, _t.ArrayType):
            self.shape = ArrayShape(self.res_ty)
        else:
            self.shape = None


@dataclass
class NewObj(Expr):
    """Object construction with the constructor abstractly pre-executed.

    The coding rules make constructors straight-line field initializations,
    so lowering evaluates them symbolically: ``field_inits`` maps every field
    to the initializing expression.  Backends emit a struct value (or, in
    VIRTUAL mode, a boxed allocation) — this is the paper's constructor
    inlining (§3.3 "Constructors").
    """

    cls: _t.ClassInfo
    field_inits: dict
    obj_shape: ObjShape

    def __post_init__(self):
        self.ty = self.cls.type
        self.shape = self.obj_shape


@dataclass
class KernelLaunch(Expr):
    """A call to a ``@global_kernel`` method — a CUDA kernel launch.

    ``config`` evaluates to a CudaConfig object shape (grid/block extents);
    ``target`` is the kernel body's specialization compiled in device mode.
    The launch is an expression of type void (statement position only).
    """

    target: object
    recv: Optional[Expr]
    config: Expr
    args: list
    site_id: int
    method_name: str

    def __post_init__(self):
        self.ty = _t.VOID
        self.shape = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    pass


@dataclass
class LocalDecl(Stmt):
    """First assignment of a local: declares it with its strict-final type."""

    name: str
    decl_ty: _t.Type
    value: Expr


@dataclass
class Assign(Stmt):
    name: str
    decl_ty: _t.Type
    value: Expr


@dataclass
class FieldStore(Stmt):
    """Store to an *array-typed* field of a snapshot object (the only field
    mutation the rules allow — e.g. double-buffer swapping)."""

    obj: Expr
    fname: str
    value: Expr


@dataclass
class ArrayStore(Stmt):
    arr: Expr
    index: Expr
    value: Expr
    #: see ArrayLoad.bounds_ok — proven-in-bounds stores skip the guard
    bounds_ok: bool = field(init=False, default=False, compare=False)


@dataclass
class If(Stmt):
    cond: Expr
    then: list
    orelse: list


@dataclass
class ForRange(Stmt):
    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr]  # None means +1
    body: list


@dataclass
class While(Stmt):
    cond: Expr
    body: list


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class ExprStmt(Stmt):
    value: Expr


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------

@dataclass
class FuncIR:
    """One specialized guest method, lowered and devirtualized."""

    symbol: str                      # mangled emission name
    method: object                   # MethodInfo
    self_shape: Optional[ObjShape]   # None for kernels' implicit config recv? no: self of method
    param_names: list                # guest parameter names (excluding self)
    param_shapes: list               # Shape per parameter
    ret_type: _t.Type
    ret_shape: Optional[Shape]
    body: list                       # list[Stmt]
    is_device: bool = False          # compiled for GPU (__device__/__global__)
    is_kernel: bool = False          # the @global_kernel entry itself


# ---------------------------------------------------------------------------
# Traversal / rewrite helpers (used by the backends and the optimizer)
# ---------------------------------------------------------------------------

def expr_children(node: Expr) -> list:
    """The direct sub-expressions of ``node``, in evaluation order."""
    if isinstance(node, FieldLoad):
        return [node.obj]
    if isinstance(node, ArrayLoad):
        return [node.arr, node.index]
    if isinstance(node, ArrayLen):
        return [node.arr]
    if isinstance(node, (BinOp, Compare)):
        return [node.left, node.right]
    if isinstance(node, UnaryOp):
        return [node.operand]
    if isinstance(node, BoolOp):
        return list(node.values)
    if isinstance(node, Cast):
        return [node.value]
    if isinstance(node, Call):
        return ([node.recv] if node.recv is not None else []) + list(node.args)
    if isinstance(node, IntrinsicCall):
        return list(node.args)
    if isinstance(node, NewObj):
        return list(node.field_inits.values())
    if isinstance(node, KernelLaunch):
        return (([node.recv] if node.recv is not None else [])
                + [node.config] + list(node.args))
    return []


def map_expr(node: Expr, fn) -> Expr:
    """Rewrite an expression tree bottom-up.

    ``fn`` is applied to every node *after* its children have been
    rewritten in place; whatever ``fn`` returns replaces the node.  The
    tree is mutated (children reattached), and the (possibly new) root is
    returned — callers must store the result back into the parent slot.
    """
    if isinstance(node, FieldLoad):
        node.obj = map_expr(node.obj, fn)
    elif isinstance(node, ArrayLoad):
        node.arr = map_expr(node.arr, fn)
        node.index = map_expr(node.index, fn)
    elif isinstance(node, ArrayLen):
        node.arr = map_expr(node.arr, fn)
    elif isinstance(node, (BinOp, Compare)):
        node.left = map_expr(node.left, fn)
        node.right = map_expr(node.right, fn)
    elif isinstance(node, UnaryOp):
        node.operand = map_expr(node.operand, fn)
    elif isinstance(node, BoolOp):
        node.values = [map_expr(v, fn) for v in node.values]
    elif isinstance(node, Cast):
        node.value = map_expr(node.value, fn)
    elif isinstance(node, Call):
        if node.recv is not None:
            node.recv = map_expr(node.recv, fn)
        node.args = [map_expr(a, fn) for a in node.args]
    elif isinstance(node, IntrinsicCall):
        node.args = [map_expr(a, fn) for a in node.args]
    elif isinstance(node, NewObj):
        node.field_inits = {
            k: map_expr(v, fn) for k, v in node.field_inits.items()
        }
    elif isinstance(node, KernelLaunch):
        if node.recv is not None:
            node.recv = map_expr(node.recv, fn)
        node.config = map_expr(node.config, fn)
        node.args = [map_expr(a, fn) for a in node.args]
    return fn(node)


def stmt_exprs(s: Stmt) -> list:
    """The top-level expressions of one statement (no recursion into
    nested statement blocks — see :func:`stmt_blocks` for those)."""
    if isinstance(s, (LocalDecl, Assign, ExprStmt)):
        return [s.value]
    if isinstance(s, FieldStore):
        return [s.obj, s.value]
    if isinstance(s, ArrayStore):
        return [s.arr, s.index, s.value]
    if isinstance(s, (If, While)):
        return [s.cond]
    if isinstance(s, ForRange):
        return [s.start, s.stop] + ([s.step] if s.step is not None else [])
    if isinstance(s, Return):
        return [s.value] if s.value is not None else []
    return []


def rewrite_stmt_exprs(s: Stmt, fn) -> None:
    """Apply ``map_expr(..., fn)`` to every top-level expression slot of
    one statement, storing the results back (nested blocks untouched)."""
    if isinstance(s, (LocalDecl, Assign, ExprStmt)):
        s.value = map_expr(s.value, fn)
    elif isinstance(s, FieldStore):
        s.obj = map_expr(s.obj, fn)
        s.value = map_expr(s.value, fn)
    elif isinstance(s, ArrayStore):
        s.arr = map_expr(s.arr, fn)
        s.index = map_expr(s.index, fn)
        s.value = map_expr(s.value, fn)
    elif isinstance(s, (If, While)):
        s.cond = map_expr(s.cond, fn)
    elif isinstance(s, ForRange):
        s.start = map_expr(s.start, fn)
        s.stop = map_expr(s.stop, fn)
        if s.step is not None:
            s.step = map_expr(s.step, fn)
    elif isinstance(s, Return):
        if s.value is not None:
            s.value = map_expr(s.value, fn)


def stmt_blocks(s: Stmt) -> list:
    """The nested statement lists of one statement (mutable, in place)."""
    if isinstance(s, If):
        return [s.then, s.orelse]
    if isinstance(s, (ForRange, While)):
        return [s.body]
    return []


def assigned_names(stmts) -> set:
    """Every local name stored to anywhere in a statement list (including
    loop variables and stores inside nested blocks)."""
    names: set = set()
    stack = list(stmts)
    while stack:
        s = stack.pop()
        if isinstance(s, (LocalDecl, Assign)):
            names.add(s.name)
        elif isinstance(s, ForRange):
            names.add(s.var)
        for block in stmt_blocks(s):
            stack.extend(block)
    return names


def walk_exprs(node):
    """Yield every Expr in a statement list / expression tree (pre-order)."""
    if isinstance(node, list):
        for item in node:
            yield from walk_exprs(item)
        return
    if isinstance(node, Expr):
        yield node
        for child in expr_children(node):
            yield from walk_exprs(child)
        return
    if isinstance(node, Stmt):
        for e in stmt_exprs(node):
            yield from walk_exprs(e)
        for block in stmt_blocks(node):
            yield from walk_exprs(block)

"""Value shapes: the static knowledge the translator has about each value.

The paper's central observation (§3.2–3.3) is that under the coding rules the
*actual* type of every object reference — and, for semi-immutable objects,
the *value* of every non-array field — can be statically determined once the
actual arguments of the entry method are given.  A :class:`Shape` is exactly
that statically-determined knowledge:

* :class:`PrimShape` — a primitive; ``const`` carries the known value when
  the primitive comes from the immutable snapshot (or a literal), else None;
* :class:`ArrayShape` — an array; ``slot`` identifies which flattened entry
  array parameter it is when it comes from the snapshot, else None;
* :class:`ObjShape` — an object with a known concrete class and a shape for
  every field.  ``root_path`` names snapshot objects (``"self"``,
  ``"self.solver"``, ...); dynamically-constructed objects have no path.

Shapes drive devirtualization (every method call's receiver has an
:class:`ObjShape`, hence a known concrete class), object inlining (snapshot
objects are never materialized at full optimization — their primitive fields
fold to literals and their array fields resolve to entry parameters), and
specialization keys.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TypeFlowError
from repro.lang import types as _t

__all__ = ["Shape", "PrimShape", "ArrayShape", "ObjShape", "merge_shapes", "shape_digest"]


class Shape:
    """Base of the static-knowledge lattice (see module docstring)."""

    ty: _t.Type

    def digest(self) -> str:
        raise NotImplementedError


class PrimShape(Shape):
    """A primitive value, possibly with a compile-time-known constant."""

    __slots__ = ("ty", "const")

    def __init__(self, ty: _t.PrimType, const=None):
        assert isinstance(ty, _t.PrimType)
        self.ty = ty
        self.const = const

    def digest(self) -> str:
        if self.const is None:
            return self.ty.name
        return f"{self.ty.name}={self.const!r}"

    def __repr__(self) -> str:
        return f"PrimShape({self.digest()})"


class ArrayShape(Shape):
    """A 1-D array value.

    ``slot`` is the index of the flattened entry array parameter this array
    resolves to when it is part of the immutable snapshot; dynamic arrays
    (allocated inside translated code, or merged from distinct slots) have
    ``slot=None`` and live as runtime values.

    ``length`` is the element count when it is statically known — snapshot
    arrays record their captured size, exactly like snapshot primitives
    record their value.  Because lengths enter the shape digest they become
    specialization (and cache-key) constants, which is what lets the range
    analysis (``repro.opt.cfg.ranges``) prove accesses in-bounds and elide
    ``REPRO_BOUNDS`` guards soundly: an artifact proven for one length can
    never be reused for another.
    """

    __slots__ = ("ty", "slot", "length")

    def __init__(self, ty: _t.ArrayType, slot: Optional[int] = None,
                 length: Optional[int] = None):
        assert isinstance(ty, _t.ArrayType)
        self.ty = ty
        self.slot = slot
        self.length = length

    @property
    def elem(self) -> _t.PrimType:
        return self.ty.elem  # element types are strict-final primitives here

    def digest(self) -> str:
        slot = self.slot if self.slot is not None else "dyn"
        if self.length is None:
            return f"{self.ty!r}@{slot}"
        return f"{self.ty!r}@{slot}#{self.length}"

    def __repr__(self) -> str:
        return f"ArrayShape({self.digest()})"


class ObjShape(Shape):
    """An object with statically-known concrete class and field shapes."""

    __slots__ = ("ty", "cls", "fields", "root_path")

    def __init__(
        self,
        cls: _t.ClassInfo,
        fields: dict[str, Shape],
        root_path: Optional[str] = None,
    ):
        self.cls = cls
        self.ty = cls.type
        self.fields = fields
        self.root_path = root_path

    @property
    def from_snapshot(self) -> bool:
        return self.root_path is not None

    def field(self, name: str) -> Shape:
        try:
            return self.fields[name]
        except KeyError:
            raise TypeFlowError(
                f"class {self.cls.name} has no field {name!r} "
                f"(known: {sorted(self.fields)})"
            ) from None

    def digest(self) -> str:
        inner = ",".join(f"{k}:{v.digest()}" for k, v in sorted(self.fields.items()))
        return f"{self.cls.qualname}{{{inner}}}"

    def __repr__(self) -> str:
        return f"ObjShape({self.cls.name}, path={self.root_path!r})"


def merge_shapes(a: Shape, b: Shape, *, where: str = "") -> Shape:
    """Join two shapes at a control-flow merge point.

    Joining loses constant/snapshot knowledge but must preserve concrete
    types — the coding rules guarantee both sides agree on those; a mismatch
    is reported as a type-flow failure.
    """
    if a is b:
        return a
    if isinstance(a, PrimShape) and isinstance(b, PrimShape):
        if a.ty is not b.ty:
            raise TypeFlowError(
                f"conflicting primitive types at merge: {a.ty} vs {b.ty} {where}"
            )
        if a.const is not None and a.const == b.const:
            return a
        return PrimShape(a.ty)
    if isinstance(a, ArrayShape) and isinstance(b, ArrayShape):
        if a.ty is not b.ty:
            raise TypeFlowError(
                f"conflicting array types at merge: {a.ty!r} vs {b.ty!r} {where}"
            )
        if a.slot is not None and a.slot == b.slot and a.length == b.length:
            return a
        length = a.length if a.length == b.length else None
        return ArrayShape(a.ty, length=length)
    if isinstance(a, ObjShape) and isinstance(b, ObjShape):
        if a.cls is not b.cls:
            raise TypeFlowError(
                f"cannot statically determine object type at merge: "
                f"{a.cls.name} vs {b.cls.name} {where} — the coding rules "
                f"require strict-final local types"
            )
        if a.root_path is not None and a.root_path == b.root_path:
            return a
        fields = {
            name: merge_shapes(a.fields[name], b.fields[name], where=where)
            for name in a.fields
            if name in b.fields
        }
        if set(a.fields) != set(b.fields):
            raise TypeFlowError(
                f"objects of class {a.cls.name} with differing field sets at "
                f"merge {where}: {sorted(a.fields)} vs {sorted(b.fields)}"
            )
        return ObjShape(a.cls, fields, root_path=None)
    raise TypeFlowError(
        f"conflicting value kinds at merge: {a!r} vs {b!r} {where}"
    )


def shapes_equal(a: Shape, b: Shape) -> bool:
    """Structural equality used by the lowering fixpoint."""
    return a.digest() == b.digest() and _kind(a) == _kind(b)


def _kind(s: Shape) -> str:
    return type(s).__name__


def shape_digest(shape: Shape) -> str:
    """Stable structural key for specialization caching."""
    return shape.digest()

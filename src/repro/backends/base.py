"""Backend interface and the optimization-level ablation.

The paper's evaluation compares four native program families that differ
only in how object orientation is compiled away.  :class:`OptLevel`
reproduces them as modes of one emitter, so every comparator runs the same
algorithm from the same IR:

=============  ==================  ==========================================
OptLevel       Paper comparator    Realization in the C backend
=============  ==================  ==========================================
``VIRTUAL``    *C++* (naive)       every method call dispatches through a
                                   volatile function-pointer table indexed by
                                   a runtime class id (a vtable the compiler
                                   cannot see through); snapshot scalar
                                   fields are runtime loads
``DEVIRT``     *Template*          all calls direct (devirtualized), but
                                   objects stay materialized: snapshot
                                   scalars remain runtime loads from the
                                   per-rank snapshot struct
``NOVIRT``     *Template w/o       direct calls + snapshot scalars folded to
               virt.*              literals, but dynamic objects remain
                                   struct values
``FULL``       *WootinJ*           direct calls + constant folding + object
                                   inlining (snapshot objects fully elided;
                                   dynamic objects scalarized)
=============  ==================  ==========================================

The Python backend always emits at ``FULL`` (it exists for portability and
differential testing, not performance comparison; the "Java on a JVM" bar is
direct CPython execution of the class library, no backend involved).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.jit.program import Program
    from repro.jit.runtime import RuntimeEnv

__all__ = ["OptLevel", "Backend", "CompiledProgram", "is_pure", "passed_params"]


class OptLevel(enum.Enum):
    """Optimization level = paper comparator (see module docstring)."""

    VIRTUAL = "virtual"   # paper: C++ (virtual functions)
    DEVIRT = "devirt"     # paper: Template (devirtualized by templates)
    NOVIRT = "novirt"     # paper: Template w/o virt. (manually flattened)
    FULL = "full"         # paper: WootinJ (devirt + object inlining)

    @property
    def devirtualize(self) -> bool:
        return self is not OptLevel.VIRTUAL

    @property
    def fold_constants(self) -> bool:
        return self in (OptLevel.NOVIRT, OptLevel.FULL)

    @property
    def inline_objects(self) -> bool:
        return self is OptLevel.FULL


class CompiledProgram:
    """A translated program ready to run on one rank.

    ``run(env, arrays)`` executes the entry method in the translated memory
    space: ``arrays`` are this rank's deep copies of the flattened entry
    array slots; ``env`` provides the runtime callbacks (MPI, GPU timing,
    outputs).  Returns the entry method's return value (primitives only
    cross back by value; arrays come back through ``wj.output`` labels).

    Instances must be safe to ``run`` from multiple threads at once after
    construction: the JIT service shares one compiled artifact across every
    ``JitCode`` that hit the same cache key, and the tiered mode hot-swaps
    a ``JitCode``'s artifact while other threads may be invoking it.
    """

    #: generated source, for inspection / docs / tests
    source: str = ""

    #: native-build breakdown (see cbackend.build.BuildStats), when any
    build_stats: "dict | None" = None

    def run(self, env: "RuntimeEnv", arrays: Sequence[np.ndarray]):
        raise NotImplementedError


class Backend:
    """Turns a specialized :class:`~repro.jit.program.Program` into a
    :class:`CompiledProgram`."""

    name: str = "?"

    #: True when ``compile`` runs an external native toolchain (slow but
    #: fast to execute).  The tiered JIT service answers on a non-native
    #: backend first and promotes to a native artifact in the background;
    #: requesting ``tiered=True`` against a non-native backend is a no-op.
    native: bool = False

    def compile(self, program: "Program", opt: OptLevel) -> CompiledProgram:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# shared emitter helpers
# ---------------------------------------------------------------------------

def is_pure(expr) -> bool:
    """Whether folding ``expr`` to its constant can drop no side effects."""
    from repro.frontend import ir

    if isinstance(expr, (ir.Const, ir.LocalRef)):
        return True
    if isinstance(expr, ir.FieldLoad):
        return is_pure(expr.obj)
    if isinstance(expr, ir.Cast):
        return is_pure(expr.value)
    if isinstance(expr, (ir.BinOp, ir.Compare)):
        return is_pure(expr.left) and is_pure(expr.right)
    if isinstance(expr, ir.UnaryOp):
        return is_pure(expr.operand)
    if isinstance(expr, ir.BoolOp):
        return all(is_pure(v) for v in expr.values)
    if isinstance(expr, ir.ArrayLen):
        return is_pure(expr.arr)
    return False


def compute_local_shapes(func_ir) -> dict:
    """Final per-local shapes for one function: every shape a local is
    observed with, merged — this governs the local's runtime representation
    (e.g. a local that merges two snapshot objects becomes a dynamic value).
    """
    from repro.frontend import ir
    from repro.frontend.shapes import PrimShape, merge_shapes
    from repro.lang import types as _t

    shapes: dict = {}
    if func_ir.self_shape is not None:
        shapes["self"] = func_ir.self_shape
    for name, shape in zip(func_ir.param_names, func_ir.param_shapes):
        shapes[name] = shape

    def note(name, shape):
        if shape is None:
            return
        if name in shapes:
            try:
                shapes[name] = merge_shapes(shapes[name], shape, where=name)
            except Exception:
                shapes[name] = shape
        else:
            shapes[name] = shape

    def walk(stmts):
        for s in stmts:
            if isinstance(s, (ir.LocalDecl, ir.Assign)):
                note(s.name, s.value.shape)
            elif isinstance(s, ir.If):
                walk(s.then)
                walk(s.orelse)
            elif isinstance(s, ir.ForRange):
                note(s.var, PrimShape(_t.I64))
                walk(s.body)
            elif isinstance(s, ir.While):
                walk(s.body)
            for e in ir.walk_exprs([s]):
                if isinstance(e, ir.LocalRef):
                    note(e.name, e.shape)

    walk(func_ir.body)
    return shapes


def passed_params(func_ir) -> list:
    """The runtime parameters of a specialized function: ``self`` (when the
    receiver is a dynamic value) plus every non-snapshot-object parameter.
    Snapshot-shaped object parameters are elided — the callee reaches them
    through the per-rank snapshot state (object inlining of the composed
    application object).  Returns [(name, shape), ...]."""
    from repro.frontend.shapes import ObjShape

    out = []
    if func_ir.self_shape is not None and not func_ir.self_shape.from_snapshot:
        out.append(("self", func_ir.self_shape))
    for name, shape in zip(func_ir.param_names, func_ir.param_shapes):
        if isinstance(shape, ObjShape) and shape.from_snapshot:
            continue
        out.append((name, shape))
    return out

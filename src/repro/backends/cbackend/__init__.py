"""C backend: the paper's translation path.

Generated C99 is compiled by the system C compiler and loaded through
ctypes; translated code talks back to the host (MPI, GPU timing, outputs)
only through a table of function pointers — the same narrow interface the
paper's generated C has to MPI/CUDA libraries.
"""

from repro.backends.cbackend.backend import CBackend
from repro.backends.cbackend.build import compiler_available

__all__ = ["CBackend", "compiler_available"]

"""The C runtime prelude embedded in every generated translation unit.

Defines the array value types, the host-callback table (``WjEnv`` — its
layout must match ``bridge.WjEnvStruct`` field for field), the kernel
geometry struct, and small helpers that give both backends identical numeric
semantics (Python floor division/modulo) and single-evaluation array
intrinsics.
"""

PRELUDE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* ---- array values ---------------------------------------------------- */
typedef struct { float*   p; int64_t n; } WjArrF32;
typedef struct { double*  p; int64_t n; } WjArrF64;
typedef struct { int32_t* p; int64_t n; } WjArrI32;
typedef struct { int64_t* p; int64_t n; } WjArrI64;
typedef struct { uint8_t* p; int64_t n; } WjArrB;

/* dtype codes shared with the host bridge */
enum { WJ_F32 = 1, WJ_F64 = 2, WJ_I32 = 3, WJ_I64 = 4, WJ_B = 5 };

/* ---- host callback table (layout mirrored by bridge.WjEnvStruct) ----- */
typedef struct WjEnv {
    void*   h;
    int64_t (*mpi_rank)(void* h);
    int64_t (*mpi_size)(void* h);
    void    (*mpi_send)(void* h, const void* p, int64_t count, int32_t dt,
                        int64_t dest, int64_t tag);
    void    (*mpi_recv)(void* h, void* p, int64_t count, int32_t dt,
                        int64_t src, int64_t tag);
    void    (*mpi_sendrecv)(void* h, const void* sp, int64_t sc,
                            int64_t dest, void* rp, int64_t rc, int64_t src,
                            int32_t dt, int64_t tag);
    void    (*mpi_barrier)(void* h);
    double  (*mpi_allreduce_sum)(void* h, double v);
    void    (*mpi_allreduce_sum_arr)(void* h, void* p, int64_t count, int32_t dt);
    void    (*mpi_bcast)(void* h, void* p, int64_t count, int32_t dt, int64_t root);
    void    (*mpi_gather)(void* h, const void* p, int64_t count, void* out,
                          int64_t outcount, int32_t dt, int64_t root);
    double  (*mpi_wtime)(void* h);
    void    (*kernel_begin)(void* h);
    void    (*kernel_end)(void* h);
    void    (*gpu_transfer)(void* h, int64_t nbytes);
    void    (*output)(void* h, const char* label, const void* p,
                      int64_t count, int32_t dt);
} WjEnv;

/* ---- kernel geometry (one logical CUDA thread) ------------------------ */
typedef struct {
    int64_t tx, ty, tz;     /* threadIdx */
    int64_t bx, by, bz;     /* blockIdx  */
    int64_t bdx, bdy, bdz;  /* blockDim  */
    int64_t gdx, gdy, gdz;  /* gridDim   */
} WjGeo;

/* ---- Python-semantics integer division -------------------------------- */
static inline int64_t wj_floordiv_i64(int64_t a, int64_t b) {
    int64_t q = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
static inline int64_t wj_mod_i64(int64_t a, int64_t b) {
    int64_t r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}
/* floor(a/b) alone diverges from CPython when a/b underflows (subnormal a:
 * -5e-324 // 3.0 is -1.0 in Python, but floor(-5e-324/3.0) == floor(-0.0)
 * == -0.0).  Follow CPython's float_divmod: derive the quotient from fmod
 * so it stays consistent with wj_mod_f64. */
static inline double wj_floordiv_f64(double a, double b) {
    double mod = fmod(a, b);
    double div = (a - mod) / b;
    if (mod != 0.0 && ((b < 0.0) != (mod < 0.0)))
        div -= 1.0;
    if (div != 0.0) {
        double floordiv = floor(div);
        if (div - floordiv > 0.5)
            floordiv += 1.0;
        return floordiv;
    }
    return copysign(0.0, a / b);
}
static inline double wj_mod_f64(double a, double b) {
    double r = fmod(a, b);
    return (r != 0.0 && ((r < 0.0) != (b < 0.0))) ? r + b : r;
}

/* ---- deterministic RNG intrinsics --------------------------------------
 * One 64-bit LCG step (Knuth MMIX constants) computed in uint64 arithmetic
 * so the wrap-around is well defined, reinterpreted as int64; the Python
 * implementations mask to the same 64 bits, so guest RNG streams are
 * bit-identical on every backend. */
static inline int64_t wj_lcg64(int64_t s) {
    return (int64_t)((uint64_t)s * UINT64_C(6364136223846793005)
                     + UINT64_C(1442695040888963407));
}
static inline double wj_u01(int64_t s) {
    /* top 53 bits onto [0, 1): exact in a double */
    return (double)((uint64_t)s >> 11) * (1.0 / 9007199254740992.0);
}

/* ---- min/max/abs ------------------------------------------------------- */
static inline int64_t wj_min_i64(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t wj_max_i64(int64_t a, int64_t b) { return a > b ? a : b; }
static inline int32_t wj_min_i32(int32_t a, int32_t b) { return a < b ? a : b; }
static inline int32_t wj_max_i32(int32_t a, int32_t b) { return a > b ? a : b; }
static inline double  wj_min_f64(double a, double b)   { return a < b ? a : b; }
static inline double  wj_max_f64(double a, double b)   { return a > b ? a : b; }
static inline float   wj_min_f32(float a, float b)     { return a < b ? a : b; }
static inline float   wj_max_f32(float a, float b)     { return a > b ? a : b; }
static inline int64_t wj_abs_i64(int64_t a) { return a < 0 ? -a : a; }
static inline int32_t wj_abs_i32(int32_t a) { return a < 0 ? -a : a; }

/* ---- bounds-checked element access (debug builds only) ------------------
 * The paper's translated code has no array boundary checks (§3.3 "Other
 * issues" — they are the developer's responsibility).  The debug build
 * routes every access through these helpers; violations are counted and
 * reported by the host bridge after the run (out-of-range loads read
 * element 0, stores are dropped, so the run completes deterministically). */
/* In multi-TU builds the counter is shared across units: secondary units
 * (compiled with -DWJ_TU_SECONDARY) reference the primary's definition. */
#ifdef WJ_TU_SECONDARY
extern int64_t wj_oob_count;
#else
int64_t wj_oob_count = 0;
int64_t wj_oob_count_take(void) {
    int64_t c = wj_oob_count;
    wj_oob_count = 0;
    return c;
}
#endif

/* ---- allocation -------------------------------------------------------- */
#define WJ_DEF_ARR(NAME, T, DT)                                              \
    static inline WjArr##NAME wj_zeros_##NAME(int64_t n) {                   \
        WjArr##NAME a;                                                       \
        a.p = (T*)calloc((size_t)(n > 0 ? n : 0), sizeof(T));                \
        a.n = n;                                                             \
        return a;                                                            \
    }                                                                        \
    static inline void wj_free_##NAME(WjArr##NAME a) { free(a.p); }          \
    static inline WjArr##NAME wj_gpu_copy_##NAME(WjEnv* env, WjArr##NAME a) {\
        WjArr##NAME d;                                                       \
        d.p = (T*)malloc(sizeof(T) * (size_t)(a.n > 0 ? a.n : 0));           \
        if (a.n > 0) memcpy(d.p, a.p, sizeof(T) * (size_t)a.n);              \
        d.n = a.n;                                                           \
        env->gpu_transfer(env->h, a.n * (int64_t)sizeof(T));                 \
        return d;                                                            \
    }                                                                        \
    static inline T wj_ld_##NAME(WjArr##NAME a, int64_t i) {                 \
        if (i < 0 || i >= a.n) { wj_oob_count++; return a.n ? a.p[0] : (T)0;}\
        return a.p[i];                                                       \
    }                                                                        \
    static inline void wj_st_##NAME(WjArr##NAME a, int64_t i, T v) {         \
        if (i < 0 || i >= a.n) { wj_oob_count++; return; }                   \
        a.p[i] = v;                                                          \
    }                                                                        \
    static inline void wj_mpi_send_##NAME(WjEnv* env, WjArr##NAME a,         \
                                          int64_t dest, int64_t tag) {       \
        env->mpi_send(env->h, a.p, a.n, DT, dest, tag);                      \
    }                                                                        \
    static inline void wj_mpi_recv_##NAME(WjEnv* env, WjArr##NAME a,         \
                                          int64_t src, int64_t tag) {        \
        env->mpi_recv(env->h, a.p, a.n, DT, src, tag);                       \
    }                                                                        \
    static inline void wj_mpi_sendrecv_##NAME(WjEnv* env, WjArr##NAME s,     \
                                              int64_t dest, WjArr##NAME r,   \
                                              int64_t src, int64_t tag) {    \
        env->mpi_sendrecv(env->h, s.p, s.n, dest, r.p, r.n, src, DT, tag);   \
    }                                                                        \
    static inline void wj_mpi_send_part_##NAME(WjEnv* env, WjArr##NAME a,    \
                                               int64_t off, int64_t cnt,     \
                                               int64_t dest, int64_t tag) {  \
        env->mpi_send(env->h, a.p + off, cnt, DT, dest, tag);                \
    }                                                                        \
    static inline void wj_mpi_recv_part_##NAME(WjEnv* env, WjArr##NAME a,    \
                                               int64_t off, int64_t cnt,     \
                                               int64_t src, int64_t tag) {   \
        env->mpi_recv(env->h, a.p + off, cnt, DT, src, tag);                 \
    }                                                                        \
    static inline void wj_mpi_sendrecv_part_##NAME(                          \
        WjEnv* env, WjArr##NAME s, int64_t soff, int64_t cnt, int64_t dest,  \
        WjArr##NAME r, int64_t roff, int64_t src, int64_t tag) {             \
        env->mpi_sendrecv(env->h, s.p + soff, cnt, dest, r.p + roff, cnt,    \
                          src, DT, tag);                                     \
    }                                                                        \
    static inline void wj_mpi_bcast_##NAME(WjEnv* env, WjArr##NAME a,        \
                                           int64_t root) {                   \
        env->mpi_bcast(env->h, a.p, a.n, DT, root);                          \
    }                                                                        \
    static inline void wj_mpi_gather_##NAME(WjEnv* env, WjArr##NAME a,       \
                                            WjArr##NAME out, int64_t root) { \
        env->mpi_gather(env->h, a.p, a.n, out.p, out.n, DT, root);           \
    }                                                                        \
    static inline void wj_mpi_allreduce_##NAME(WjEnv* env, WjArr##NAME a) {  \
        env->mpi_allreduce_sum_arr(env->h, a.p, a.n, DT);                    \
    }                                                                        \
    static inline void wj_output_##NAME(WjEnv* env, const char* label,       \
                                        WjArr##NAME a) {                     \
        env->output(env->h, label, a.p, a.n, DT);                            \
    }

WJ_DEF_ARR(F32, float, WJ_F32)
WJ_DEF_ARR(F64, double, WJ_F64)
WJ_DEF_ARR(I32, int32_t, WJ_I32)
WJ_DEF_ARR(I64, int64_t, WJ_I64)
"""

#: appended to the shared header only when the program contains at least
#: one `#pragma omp parallel for` loop.  Compiles unchanged without
#: -fopenmp (the pragmas are ignored and wj_omp_max_threads reports 1),
#: which is exactly the sequential-degradation contract of REPRO_OMP.
OMP_BLOCK = r"""
#ifdef _OPENMP
#include <omp.h>
#endif
#ifdef WJ_TU_SECONDARY
int64_t wj_omp_max_threads(void);
#else
int64_t wj_omp_max_threads(void) {
#ifdef _OPENMP
    return (int64_t)omp_get_max_threads();
#else
    return 1;
#endif
}
#endif
"""

#: appended to the shared header only when the program calls wj.dgemm.
#: With a BLAS detected at build time (-DWJ_HAVE_CBLAS plus the link
#: flag, see build.py) the call drops into cblas_dgemm; otherwise the
#: fallback loop nest runs — its accumulation order matches the
#: intrinsic's Python reference implementation bit for bit, so only the
#: cblas path trades bit-exactness for vendor-kernel speed.
DGEMM_BLOCK = r"""
#ifdef WJ_HAVE_CBLAS
void cblas_dgemm(int Order, int TransA, int TransB, int M, int N, int K,
                 double alpha, const double* A, int lda, const double* B,
                 int ldb, double beta, double* C, int ldc);
#endif
static inline void wj_dgemm(WjArrF64 a, WjArrF64 b, WjArrF64 c,
                            int64_t m, int64_t n, int64_t k) {
#ifdef WJ_HAVE_CBLAS
    /* 101 = CblasRowMajor, 111 = CblasNoTrans */
    cblas_dgemm(101, 111, 111, (int)m, (int)n, (int)k, 1.0, a.p, (int)k,
                b.p, (int)n, 1.0, c.p, (int)n);
#else
    int64_t i;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i = 0; i < m; i++) {
        int64_t j;
        for (j = 0; j < n; j++) {
            double acc = c.p[i * n + j];
            int64_t t;
            for (t = 0; t < k; t++) {
                acc += a.p[i * k + t] * b.p[t * n + j];
            }
            c.p[i * n + j] = acc;
        }
    }
#endif
}
"""

"""ctypes bridge: load the compiled .so and run it.

The translated program sees the host only through the ``WjEnv`` callback
table (layout mirroring ``prelude.PRELUDE``'s ``WjEnv``).  Per rank and per
invocation the bridge builds fresh callback thunks bound to that rank's
:class:`~repro.jit.runtime.RuntimeEnv`, fills the flattened array-slot
pointer/length vectors from the rank's deep copies, hands the generated code
an opaque snapshot buffer to materialize into, and reads the typed return
value back out.

MPI payloads cross as zero-copy NumPy views over the C memory, so the
simulated communicator exchanges the *actual translated data* — this is what
lets tests bit-compare C-backend MPI runs against sequential references.
"""

from __future__ import annotations

import ctypes as ct
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.backends.base import CompiledProgram
from repro.backends.cbackend.emit import EmitResult
from repro.errors import BackendError
from repro.lang import types as _t

__all__ = ["CCompiled", "WjEnvStruct"]

_DT_NP = {1: np.float32, 2: np.float64, 3: np.int32, 4: np.int64, 5: np.uint8}

# callback prototypes — order and signatures must match prelude's WjEnv
_FN_RANK = ct.CFUNCTYPE(ct.c_int64, ct.c_void_p)
_FN_SEND = ct.CFUNCTYPE(None, ct.c_void_p, ct.c_void_p, ct.c_int64, ct.c_int32, ct.c_int64, ct.c_int64)
_FN_RECV = _FN_SEND
_FN_SENDRECV = ct.CFUNCTYPE(
    None, ct.c_void_p, ct.c_void_p, ct.c_int64, ct.c_int64,
    ct.c_void_p, ct.c_int64, ct.c_int64, ct.c_int32, ct.c_int64,
)
_FN_VOID = ct.CFUNCTYPE(None, ct.c_void_p)
_FN_ALLRED = ct.CFUNCTYPE(ct.c_double, ct.c_void_p, ct.c_double)
_FN_ALLRED_ARR = ct.CFUNCTYPE(None, ct.c_void_p, ct.c_void_p, ct.c_int64, ct.c_int32)
_FN_BCAST = ct.CFUNCTYPE(None, ct.c_void_p, ct.c_void_p, ct.c_int64, ct.c_int32, ct.c_int64)
_FN_GATHER = ct.CFUNCTYPE(
    None, ct.c_void_p, ct.c_void_p, ct.c_int64, ct.c_void_p, ct.c_int64, ct.c_int32, ct.c_int64
)
_FN_WTIME = ct.CFUNCTYPE(ct.c_double, ct.c_void_p)
_FN_TRANSFER = ct.CFUNCTYPE(None, ct.c_void_p, ct.c_int64)
_FN_OUTPUT = ct.CFUNCTYPE(None, ct.c_void_p, ct.c_char_p, ct.c_void_p, ct.c_int64, ct.c_int32)


class WjEnvStruct(ct.Structure):
    """ctypes mirror of the prelude's WjEnv callback table."""

    _fields_ = [
        ("h", ct.c_void_p),
        ("mpi_rank", _FN_RANK),
        ("mpi_size", _FN_RANK),
        ("mpi_send", _FN_SEND),
        ("mpi_recv", _FN_RECV),
        ("mpi_sendrecv", _FN_SENDRECV),
        ("mpi_barrier", _FN_VOID),
        ("mpi_allreduce_sum", _FN_ALLRED),
        ("mpi_allreduce_sum_arr", _FN_ALLRED_ARR),
        ("mpi_bcast", _FN_BCAST),
        ("mpi_gather", _FN_GATHER),
        ("mpi_wtime", _FN_WTIME),
        ("kernel_begin", _FN_VOID),
        ("kernel_end", _FN_VOID),
        ("gpu_transfer", _FN_TRANSFER),
        ("output", _FN_OUTPUT),
    ]


_EMPTY = {dt: np.empty(0, dtype=np_dt) for dt, np_dt in _DT_NP.items()}


@lru_cache(maxsize=4096)
def _char_array_type(nbytes: int):
    # creating a ctypes array *type* is expensive; sizes repeat heavily
    # (halo planes, blocks), so cache them
    return ct.c_char * nbytes


def _view(p, count, dt) -> np.ndarray:
    """Zero-copy NumPy view over translated-code memory."""
    dt = int(dt)
    count = int(count)
    if count == 0:
        return _EMPTY[dt]
    np_dt = _DT_NP[dt]
    buf = _char_array_type(count * np.dtype(np_dt).itemsize).from_address(p)
    return np.frombuffer(buf, dtype=np_dt)


def _make_env(env) -> tuple[WjEnvStruct, list]:
    """Build the callback table for one rank (refs returned to keep the
    thunks alive during the native call).

    Every callback first notes the native→host transition so the calibrated
    instrumentation cost is deducted from the rank's compute segment (see
    repro.mpi.calibrate).
    """

    def metered(fn):
        def wrapped(*args):
            env.note_native_entry()
            return fn(*args)

        return wrapped

    def mpi_rank(h):
        return env.mpi_rank()

    def mpi_size(h):
        return env.mpi_size()

    def mpi_send(h, p, count, dt, dest, tag):
        env.mpi_send(_view(p, count, dt), dest, tag)

    def mpi_recv(h, p, count, dt, src, tag):
        env.mpi_recv(_view(p, count, dt), src, tag)

    def mpi_sendrecv(h, sp, sc, dest, rp, rc, src, dt, tag):
        env.mpi_sendrecv(_view(sp, sc, dt), dest, _view(rp, rc, dt), src, tag)

    def mpi_barrier(h):
        env.mpi_barrier()

    def mpi_allreduce_sum(h, v):
        return env.mpi_allreduce_sum(v)

    def mpi_allreduce_sum_arr(h, p, count, dt):
        env.mpi_allreduce_sum_array(_view(p, count, dt))

    def mpi_bcast(h, p, count, dt, root):
        env.mpi_bcast(_view(p, count, dt), root)

    def mpi_gather(h, p, count, out, outcount, dt, root):
        env.mpi_gather(_view(p, count, dt), _view(out, outcount, dt), root)

    def mpi_wtime(h):
        return env.mpi_wtime()

    def kernel_begin(h):
        env.kernel_begin()

    def kernel_end(h):
        env.kernel_end()

    def gpu_transfer(h, nbytes):
        env.gpu_transfer(nbytes)

    def output(h, label, p, count, dt):
        env.output(label.decode(), _view(p, count, dt))

    thunks = [
        _FN_RANK(metered(mpi_rank)),
        _FN_RANK(metered(mpi_size)),
        _FN_SEND(metered(mpi_send)),
        _FN_RECV(metered(mpi_recv)),
        _FN_SENDRECV(metered(mpi_sendrecv)),
        _FN_VOID(metered(mpi_barrier)),
        _FN_ALLRED(metered(mpi_allreduce_sum)),
        _FN_ALLRED_ARR(metered(mpi_allreduce_sum_arr)),
        _FN_BCAST(metered(mpi_bcast)),
        _FN_GATHER(metered(mpi_gather)),
        _FN_WTIME(metered(mpi_wtime)),
        _FN_VOID(metered(kernel_begin)),
        _FN_VOID(metered(kernel_end)),
        _FN_TRANSFER(metered(gpu_transfer)),
        _FN_OUTPUT(metered(output)),
    ]
    struct = WjEnvStruct(None, *thunks)
    return struct, thunks


class CCompiled(CompiledProgram):
    """A loaded, callable translated program."""

    def __init__(self, so_path, emit: EmitResult, source: str, *,
                 bounds_checks: bool = False):
        self.so_path = str(so_path)
        self.emit_result = emit
        self.source = source
        self.bounds_checks = bounds_checks
        self._lib = ct.CDLL(self.so_path)
        self._lib.wj_oob_count_take.restype = ct.c_int64
        self._lib.wj_oob_count_take.argtypes = []
        self._lib.wj_snap_size.restype = ct.c_int64
        self._lib.wj_snap_size.argtypes = []
        self._snap_size = int(self._lib.wj_snap_size())
        # wj_omp_max_threads only exists in programs with parallel loops
        try:
            omp_fn = self._lib.wj_omp_max_threads
        except AttributeError:
            self.omp_max_threads = 0
        else:
            omp_fn.restype = ct.c_int64
            omp_fn.argtypes = []
            self.omp_max_threads = int(omp_fn())
            from repro.obs import metrics as _metrics

            _metrics.registry().gauge("parallel.threads_available").set(
                self.omp_max_threads
            )
        self._lib.wj_entry.restype = None
        self._lib.wj_entry.argtypes = [
            ct.POINTER(WjEnvStruct),
            ct.c_void_p,
            ct.POINTER(ct.c_void_p),
            ct.POINTER(ct.c_int64),
            ct.POINTER(ct.c_int64),
            ct.POINTER(ct.c_double),
            ct.c_void_p,
        ]
        n_i = max(1, len(emit.ivals))
        n_d = max(1, len(emit.dvals))
        self._iv = (ct.c_int64 * n_i)(*(emit.ivals or [0]))
        self._dv = (ct.c_double * n_d)(*(emit.dvals or [0.0]))

    def run(self, env, arrays: Sequence[np.ndarray]):
        if len(arrays) != self.emit_result.n_slots:
            raise BackendError(
                f"expected {self.emit_result.n_slots} array slots, got {len(arrays)}"
            )
        n = max(1, len(arrays))
        sp = (ct.c_void_p * n)()
        sl = (ct.c_int64 * n)()
        for i, arr in enumerate(arrays):
            if not arr.flags.c_contiguous:
                raise BackendError(f"array slot {i} must be C-contiguous")
            sp[i] = arr.ctypes.data
            sl[i] = arr.shape[0]
        snap = ct.create_string_buffer(max(1, self._snap_size))
        ret_ty = self.emit_result.entry_ret
        if ret_ty is _t.VOID:
            ret_buf = ct.c_int64(0)
        elif ret_ty is _t.F64:
            ret_buf = ct.c_double(0.0)
        elif ret_ty is _t.F32:
            ret_buf = ct.c_float(0.0)
        elif ret_ty is _t.I64:
            ret_buf = ct.c_int64(0)
        elif ret_ty is _t.I32:
            ret_buf = ct.c_int32(0)
        elif ret_ty is _t.BOOL:
            ret_buf = ct.c_int32(0)
        else:
            raise BackendError(
                f"entry return type {ret_ty!r} cannot cross the C boundary"
            )
        env_struct, thunks = _make_env(env)
        self._lib.wj_entry(
            ct.byref(env_struct),
            ct.cast(snap, ct.c_void_p),
            sp,
            sl,
            self._iv,
            self._dv,
            ct.cast(ct.byref(ret_buf), ct.c_void_p),
        )
        del thunks  # keep alive until after the call
        if self.bounds_checks:
            oob = int(self._lib.wj_oob_count_take())
            if oob:
                from repro.errors import GuestRuntimeError

                raise GuestRuntimeError(
                    f"{oob} out-of-bounds array access(es) in translated "
                    f"code (debug bounds checking)"
                )
        if ret_ty is _t.VOID:
            return None
        value = ret_buf.value
        if ret_ty is _t.BOOL:
            return bool(value)
        return value

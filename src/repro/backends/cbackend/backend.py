"""The C backend driver: emit → compile → load."""

from __future__ import annotations

from repro.backends.base import Backend, CompiledProgram, OptLevel
from repro.backends.cbackend.build import build_shared_object
from repro.backends.cbackend.bridge import CCompiled
from repro.backends.cbackend.emit import CProgramEmitter
from repro.jit.program import Program
from repro.obs import metrics as _metrics
from repro.opt import parallel as _par

__all__ = ["CBackend"]

_M = _metrics.registry()


class CBackend(Backend):
    """Emit C99, compile with the system compiler, load via ctypes."""

    name = "c"
    native = True

    def __init__(self, *, bounds_checks: bool | None = None):
        # the paper's translated code has no array bounds checks (§3.3
        # "Other issues"); a debug build can turn them on (also via
        # REPRO_BOUNDS=1).  env_flag fixes the old parser, which treated
        # "false"/"no" as truthy.
        from repro.env import env_flag

        if bounds_checks is None:
            bounds_checks = env_flag("REPRO_BOUNDS", default=False)
        self.bounds_checks = bounds_checks

    def compile(self, program: Program, opt: OptLevel) -> CompiledProgram:
        # loop parallelization only at FULL (the comparator modes measure
        # abstraction cost) and never under bounds checks (the shared
        # wj_oob_count counter is not thread-safe)
        plan = None
        if (
            _par.omp_enabled()
            and opt is OptLevel.FULL
            and not self.bounds_checks
        ):
            plan = _par.analyze_program(program)
            _M.counter("parallel.loops_seen").inc(
                plan.stats["loops_seen"])
            _M.counter("parallel.loops_parallelized").inc(
                plan.stats["loops_parallel"])
            _M.counter("parallel.reductions").inc(
                plan.stats["reductions"])
        result = CProgramEmitter(
            program, opt, bounds_checks=self.bounds_checks,
            parallel_plan=plan,
        ).emit()
        so_path, stats = build_shared_object(
            result.source, opt, units=result.units,
            openmp=result.uses_omp
            or (result.uses_dgemm and _par.omp_enabled()),
            blas=result.uses_dgemm and _par.blas_enabled(),
        )
        compiled = CCompiled(so_path, result, result.source,
                             bounds_checks=self.bounds_checks)
        compiled.build_stats = stats.as_dict()
        if plan is not None:
            # ride build_stats so the parallel decisions persist through
            # the disk cache meta and surface in JitReport.opt_stats
            compiled.build_stats["parallel"] = {
                "loops_seen": plan.stats["loops_seen"],
                "loops_parallel": plan.stats["loops_parallel"],
                "loops_guarded": plan.stats["loops_guarded"],
                "reductions": plan.stats["reductions"],
                "threads_requested": plan.threads,
                "functions": plan.stats["functions"],
            }
        return compiled

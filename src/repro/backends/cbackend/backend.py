"""The C backend driver: emit → compile → load."""

from __future__ import annotations

from repro.backends.base import Backend, CompiledProgram, OptLevel
from repro.backends.cbackend.build import build_shared_object
from repro.backends.cbackend.bridge import CCompiled
from repro.backends.cbackend.emit import CProgramEmitter
from repro.jit.program import Program

__all__ = ["CBackend"]


class CBackend(Backend):
    """Emit C99, compile with the system compiler, load via ctypes."""

    name = "c"
    native = True

    def __init__(self, *, bounds_checks: bool | None = None):
        # the paper's translated code has no array bounds checks (§3.3
        # "Other issues"); a debug build can turn them on (also via
        # REPRO_BOUNDS=1).  env_flag fixes the old parser, which treated
        # "false"/"no" as truthy.
        from repro.env import env_flag

        if bounds_checks is None:
            bounds_checks = env_flag("REPRO_BOUNDS", default=False)
        self.bounds_checks = bounds_checks

    def compile(self, program: Program, opt: OptLevel) -> CompiledProgram:
        result = CProgramEmitter(
            program, opt, bounds_checks=self.bounds_checks
        ).emit()
        so_path, stats = build_shared_object(result.source, opt,
                                             units=result.units)
        compiled = CCompiled(so_path, result, result.source,
                             bounds_checks=self.bounds_checks)
        compiled.build_stats = stats.as_dict()
        return compiled

"""C99 emitter — the translation the paper's §3.3 describes, at all four
optimization levels.

Shared representation decisions (see ``frontend/ir.py``):

* snapshot objects are never C values — their primitive fields either fold
  to literals (NOVIRT/FULL) or load from the per-rank ``WjSnap`` state
  (VIRTUAL/DEVIRT), their array fields are mutable ``WjSnap`` members, and
  object-typed links are resolved statically through shapes;
* dynamic objects are C struct values (constructed by compound literals —
  constructor inlining); at VIRTUAL they carry a runtime class id and every
  method call goes through a ``volatile`` function-pointer table in
  ``WjSnap`` (a vtable the C compiler cannot devirtualize);
* kernels become per-thread functions called from grid/block loop nests
  bracketed by ``kernel_begin``/``kernel_end`` host callbacks (GPU-time
  metering).

The generated TU is self-contained: the host passes in the callback table,
an opaque snapshot buffer, and the flattened array slots; the exported
``wj_entry`` materializes the snapshot and runs the translated entry method.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.backends.base import (
    OptLevel,
    compute_local_shapes,
    is_pure,
    passed_params,
)
from repro.backends.cbackend.prelude import DGEMM_BLOCK, OMP_BLOCK, PRELUDE
from repro.errors import BackendError
from repro.frontend import ir
from repro.frontend.shapes import ArrayShape, ObjShape, PrimShape, Shape
from repro.jit.program import Program
from repro.lang import types as _t

__all__ = ["CProgramEmitter", "EmitResult"]

_ARR_SUFFIX = {id(_t.F32): "F32", id(_t.F64): "F64", id(_t.I32): "I32", id(_t.I64): "I64"}

_GEO_FIELD = {
    "tid_x": "tx", "tid_y": "ty", "tid_z": "tz",
    "bid_x": "bx", "bid_y": "by", "bid_z": "bz",
    "bdim_x": "bdx", "bdim_y": "bdy", "bdim_z": "bdz",
    "gdim_x": "gdx", "gdim_y": "gdy", "gdim_z": "gdz",
}

_MATH_C = {
    "sqrt": "sqrt", "exp": "exp", "log": "log", "sin": "sin", "cos": "cos",
    "tanh": "tanh", "fabs": "fabs", "floor": "floor", "ceil": "ceil",
    "fmod": "fmod", "pow": "pow",
}


def arr_suffix(elem: _t.PrimType) -> str:
    try:
        return _ARR_SUFFIX[id(elem)]
    except KeyError:
        raise BackendError(
            f"array element type {elem!r} is not supported by the C backend"
        ) from None


class EmitResult:
    """Emitted source plus the runtime-initialization data the bridge needs
    (scalar tables, entry return type, array-slot count)."""

    def __init__(self, source: str, ivals: list[int], dvals: list[float],
                 entry_ret: _t.Type, n_slots: int,
                 units: "list[str] | None" = None, uses_omp: bool = False,
                 uses_dgemm: bool = False):
        self.source = source
        self.ivals = ivals
        self.dvals = dvals
        self.entry_ret = entry_ret
        self.n_slots = n_slots
        #: per-specialization translation units (shared header + one function
        #: each, entry/bind unit last) for parallel builds; None when the
        #: program is too small to split
        self.units = units
        #: the source contains `#pragma omp` loops / a wj_dgemm call site —
        #: the build adds -fopenmp / BLAS flags accordingly
        self.uses_omp = uses_omp
        self.uses_dgemm = uses_dgemm


class _Writer:
    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def line(self, text: str = "") -> None:
        self.lines.append("    " * self.depth + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def c_str(text: str) -> str:
    out = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{out}"'


class CProgramEmitter:
    """Emits one translated program as a self-contained C99 translation
    unit at the configured optimization level."""

    def __init__(self, program: Program, opt: OptLevel, *, bounds_checks: bool = False,
                 parallel_plan=None):
        self.program = program
        self.opt = opt
        self.bounds_checks = bounds_checks
        #: repro.opt.parallel.ParallelPlan or None — per-ForRange OpenMP
        #: decisions; None leaves the sequential emitter byte-identical
        self.parallel_plan = parallel_plan
        self._uses_dgemm = False
        # dynamic-object struct interning
        self.struct_defs: list[str] = []
        self._struct_by_key: dict = {}
        # WjSnap members
        self.snap_members: list[str] = []
        self._scalar_members: dict = {}   # (path, fname) -> member name
        self._arr_members: dict = {}      # (path, fname) -> (member, suffix)
        self._objcls_members: dict = {}   # path -> member (runtime class id of a snapshot object)
        self._clsid_members: dict = {}    # ClassInfo id -> member (class-id constant)
        self._clsids: dict = {}           # ClassInfo id -> numeric id
        self.ivals: list[int] = []
        self.dvals: list[float] = []
        self._init_lines: list[str] = []  # wj_entry snapshot-materialization
        self._bind_lines: list[str] = []  # VIRTUAL dispatch-table filling
        self._site_members: list[tuple[int, str]] = []  # (site_id, member decl)
        self.local_shapes: dict[str, dict[str, Shape]] = {}
        self._ffi: dict[str, object] = {}
        self._entry_arg_members: list[str] = []
        self._uses_sync = False

    # ------------------------------------------------------------------
    # type mapping
    # ------------------------------------------------------------------

    def ctype(self, shape: Shape) -> str:
        if isinstance(shape, PrimShape):
            return shape.ty.cname
        if isinstance(shape, ArrayShape):
            return f"WjArr{arr_suffix(shape.elem)}"
        if isinstance(shape, ObjShape):
            if shape.from_snapshot:
                return "int64_t"  # dummy: value resolved via shape
            return self.struct_of(shape)
        raise BackendError(f"untypeable shape {shape!r}")

    def ret_ctype(self, func_ir: ir.FuncIR) -> str:
        if func_ir.ret_type is _t.VOID:
            return "void"
        if func_ir.ret_shape is not None:
            return self.ctype(func_ir.ret_shape)
        if isinstance(func_ir.ret_type, _t.PrimType):
            return func_ir.ret_type.cname
        raise BackendError(f"untypeable return {func_ir.ret_type!r}")

    def struct_of(self, shape: ObjShape) -> str:
        key = self._struct_key(shape)
        name = self._struct_by_key.get(key)
        if name is not None:
            return name
        # intern nested structs first so definitions appear in order
        members = []
        if self.opt is OptLevel.VIRTUAL:
            members.append("int32_t cls;")
        for fname, fshape in shape.fields.items():
            if isinstance(fshape, ObjShape) and fshape.from_snapshot:
                continue  # statically-resolved link: no storage
            members.append(f"{self.ctype(fshape)} f_{fname};")
        name = f"S_{shape.cls.name}_{len(self._struct_by_key)}"
        self._struct_by_key[key] = name
        if not members:
            members = ["int _empty;"]
        body = "\n    ".join(members)
        self.struct_defs.append(f"typedef struct {{\n    {body}\n}} {name};")
        return name

    def _struct_key(self, shape: ObjShape):
        parts = [shape.cls.qualname]
        for fname, fshape in shape.fields.items():
            if isinstance(fshape, ObjShape):
                if fshape.from_snapshot:
                    parts.append((fname, "snap", fshape.cls.qualname))
                else:
                    parts.append((fname, "obj", self._struct_key(fshape)))
            elif isinstance(fshape, ArrayShape):
                parts.append((fname, "arr", arr_suffix(fshape.elem)))
            else:
                parts.append((fname, "prim", fshape.ty.name))
        return tuple(parts)

    # ------------------------------------------------------------------
    # snapshot state interning
    # ------------------------------------------------------------------

    def scalar_member(self, path: str, fname: str, fshape: PrimShape) -> str:
        key = (path, fname)
        member = self._scalar_members.get(key)
        if member is not None:
            return member
        member = f"s{len(self._scalar_members)}"
        self._scalar_members[key] = member
        cname = fshape.ty.cname
        self.snap_members.append(f"{cname} {member}; /* {path}.{fname} */")
        value = fshape.const
        if value is None:
            raise BackendError(f"snapshot scalar {path}.{fname} without a value")
        if fshape.ty.is_float:
            idx = len(self.dvals)
            self.dvals.append(float(value))
            self._init_lines.append(f"snap->{member} = ({cname})dv[{idx}];")
        else:
            idx = len(self.ivals)
            self.ivals.append(int(value))
            self._init_lines.append(f"snap->{member} = ({cname})iv[{idx}];")
        return member

    def arr_member(self, path: str, fname: str, fshape: ArrayShape) -> str:
        key = (path, fname)
        got = self._arr_members.get(key)
        if got is not None:
            return got[0]
        if fshape.slot is None:
            raise BackendError(f"snapshot array {path}.{fname} without a slot")
        suffix = arr_suffix(fshape.elem)
        member = f"a{len(self._arr_members)}"
        self._arr_members[key] = (member, suffix)
        self.snap_members.append(f"WjArr{suffix} {member}; /* {path}.{fname} */")
        elem_c = fshape.elem.cname
        self._init_lines.append(
            f"snap->{member} = (WjArr{suffix}){{ ({elem_c}*)sp[{fshape.slot}], "
            f"sl[{fshape.slot}] }};"
        )
        return member

    def clsid(self, info: _t.ClassInfo) -> int:
        got = self._clsids.get(id(info))
        if got is None:
            got = len(self._clsids)
            self._clsids[id(info)] = got
        return got

    def clsid_member(self, info: _t.ClassInfo) -> str:
        """WjSnap member holding the runtime numeric id of a class."""
        member = self._clsid_members.get(id(info))
        if member is None:
            member = f"k{len(self._clsid_members)}"
            self._clsid_members[id(info)] = member
            self.snap_members.append(f"int32_t {member}; /* classid {info.name} */")
            idx = len(self.ivals)
            self.ivals.append(self.clsid(info))
            self._init_lines.append(f"snap->{member} = (int32_t)iv[{idx}];")
        return member

    def objcls_member(self, shape: ObjShape) -> str:
        """WjSnap member holding a snapshot object's class id (VIRTUAL)."""
        member = self._objcls_members.get(shape.root_path)
        if member is None:
            member = f"c{len(self._objcls_members)}"
            self._objcls_members[shape.root_path] = member
            self.snap_members.append(
                f"int32_t {member}; /* class of {shape.root_path} */"
            )
            idx = len(self.ivals)
            self.ivals.append(self.clsid(shape.cls))
            self._init_lines.append(f"snap->{member} = (int32_t)iv[{idx}];")
        return member

    def site_member(self, site_id: int) -> str:
        for sid, _ in self._site_members:
            if sid == site_id:
                return f"t{site_id}"
        self._site_members.append((site_id, ""))
        return f"t{site_id}"

    # ------------------------------------------------------------------
    # signatures
    # ------------------------------------------------------------------

    def csig(self, spec) -> tuple[str, list[str], list[str]]:
        """(ret_ctype, param_decls, param_ctypes_for_cast)"""
        f = spec.func_ir
        decls = ["WjEnv* env", "WjSnap* snap"]
        ctys = ["WjEnv*", "WjSnap*"]
        if f.is_device:
            decls.append("WjGeo* geo")
            ctys.append("WjGeo*")
        if f.self_shape is not None and not f.self_shape.from_snapshot:
            cty = self.ctype(f.self_shape)
            decls.append(f"{cty} v_self")
            ctys.append(cty)
        for name, shape in zip(f.param_names, f.param_shapes):
            if isinstance(shape, ObjShape) and shape.from_snapshot:
                continue
            cty = self.ctype(shape)
            decls.append(f"{cty} v_{name}")
            ctys.append(cty)
        return self.ret_ctype(f), decls, ctys

    # ------------------------------------------------------------------
    # program assembly
    # ------------------------------------------------------------------

    def emit(self) -> EmitResult:
        protos: list[str] = []
        spec_bodies: list[_Writer] = []
        for spec in self.program.specializations:
            self.local_shapes[spec.symbol] = compute_local_shapes(spec.func_ir)
        for spec in self.program.specializations:
            ret, decls, _ = self.csig(spec)
            # non-static: in multi-TU builds callers live in other units
            protos.append(f"{ret} {spec.symbol}({', '.join(decls)});")
            bw = _Writer()
            _CFunc(self, spec).emit(bw)
            spec_bodies.append(bw)

        entry = self.program.entry
        # emit the entry wrapper first: it interns entry-argument snapshot
        # members, which must exist before the WjSnap struct is printed
        entry_w = _Writer()
        self._emit_entry(entry_w, entry)

        # shared header: everything every translation unit needs
        head = _Writer()
        head.line("/* generated by repro.backends.cbackend — do not edit */")
        head.line(PRELUDE)
        if self.parallel_plan is not None and self.parallel_plan.n_parallel > 0:
            head.line(OMP_BLOCK)
        if self._uses_dgemm:
            head.line(DGEMM_BLOCK)
        for inc in sorted({i for ff in self._ffi.values() for i in ff.includes}):
            head.line(f"#include <{inc}>")
        for ff in self._ffi.values():
            if ff.csource:
                head.line(ff.csource)
        head.line()
        for sd in self.struct_defs:
            head.line(sd)
            head.line()
        # WjSnap: per-rank translated-memory-space state
        members = list(self.snap_members)
        for sid, _ in self._site_members:
            members.append(
                f"void* volatile t{sid}[{max(1, len(self._clsids))}]; /* vtable site {sid} */"
            )
        if not members:
            members = ["int _empty;"]
        head.line("typedef struct WjSnap {")
        for m in members:
            head.line(f"    {m}")
        head.line("} WjSnap;")
        head.line()
        for p in protos:
            head.line(p)
        head.line()

        # primary tail: dispatch-table binding + the entry wrapper
        tail = _Writer()
        tail.line("static void wj_bind(WjSnap* snap) {")
        for line in self._bind_lines:
            tail.line(f"    {line}")
        tail.line("    (void)snap;")
        tail.line("}")
        tail.line()
        tail.line("int64_t wj_snap_size(void) { return (int64_t)sizeof(WjSnap); }")
        tail.line()
        tail.lines.extend(entry_w.lines)

        out = _Writer()
        out.lines.extend(head.lines)
        for bw in spec_bodies:
            out.lines.extend(bw.lines)
        out.lines.extend(tail.lines)

        units: list[str] | None = None
        if len(spec_bodies) >= 2:
            header_src = head.source()
            units = [
                "#define WJ_TU_SECONDARY 1\n" + header_src + bw.source()
                for bw in spec_bodies
            ]
            units.append(header_src + tail.source())
        return EmitResult(
            out.source(),
            list(self.ivals),
            list(self.dvals),
            entry.func_ir.ret_type,
            len(self.program.snapshot.array_slots),
            units=units,
            uses_omp=(
                self.parallel_plan is not None
                and self.parallel_plan.n_parallel > 0
            ),
            uses_dgemm=self._uses_dgemm,
        )

    def _emit_entry(self, out: _Writer, entry) -> None:
        f = entry.func_ir
        out.line(
            "void wj_entry(WjEnv* env, void* snapbuf, void** sp, int64_t* sl, "
            "int64_t* iv, double* dv, void* ret_out) {"
        )
        out.depth += 1
        out.line("WjSnap* snap = (WjSnap*)snapbuf;")
        out.line("memset(snap, 0, sizeof(WjSnap));")
        # entry arguments: folded at NOVIRT/FULL, runtime snap loads otherwise
        call_args = ["env", "snap"]
        helper = _CFunc(self, entry)
        for name, shape in zip(f.param_names, f.param_shapes):
            if isinstance(shape, ObjShape) and shape.from_snapshot:
                continue
            if isinstance(shape, PrimShape):
                if shape.const is None:
                    raise BackendError("entry scalar argument without a value")
                if self.opt.fold_constants:
                    call_args.append(helper.lit(shape.const, shape.ty))
                else:
                    member = self.scalar_member("entry", name, shape)
                    call_args.append(f"snap->{member}")
            elif isinstance(shape, ArrayShape):
                if shape.slot is None:
                    raise BackendError("entry array argument without a slot")
                suffix = arr_suffix(shape.elem)
                elem_c = shape.elem.cname
                call_args.append(
                    f"(WjArr{suffix}){{ ({elem_c}*)sp[{shape.slot}], "
                    f"sl[{shape.slot}] }}"
                )
            else:
                raise BackendError(f"unsupported entry argument shape {shape!r}")
        # snapshot materialization (interned during body emission + above)
        for line in self._init_lines:
            out.line(line)
        out.line("wj_bind(snap);")
        out.line("(void)iv; (void)dv; (void)sp; (void)sl;")
        call = f"{entry.symbol}({', '.join(call_args)})"
        if f.ret_type is _t.VOID:
            out.line(f"{call};")
            out.line("(void)ret_out;")
        else:
            ret_c = self.ret_ctype(f)
            out.line(f"*({ret_c}*)ret_out = {call};")
        out.depth -= 1
        out.line("}")


class _CFunc:
    """Emits one specialized function."""

    def __init__(self, p: CProgramEmitter, spec):
        self.p = p
        self.spec = spec
        self.f: ir.FuncIR = spec.func_ir
        self._tmp = 0

    # -- literals ---------------------------------------------------------

    def lit(self, value, prim: _t.PrimType) -> str:
        if prim is _t.BOOL:
            return "1" if value else "0"
        if prim.is_float:
            v = float(value)
            if math.isnan(v):
                return "NAN"
            if math.isinf(v):
                return "INFINITY" if v > 0 else "(-INFINITY)"
            text = repr(v)
            if "e" not in text and "." not in text:
                text += ".0"
            return f"{text}f" if prim is _t.F32 else text
        if prim is _t.I64:
            return f"INT64_C({int(value)})"
        return str(int(value))

    # -- expressions --------------------------------------------------------

    def emit(self, out: Optional[_Writer] = None):
        if out is not None:
            return self.emit_function(out)
        raise BackendError("emit() needs a writer")

    def e(self, expr: ir.Expr) -> str:
        s = expr.shape
        if isinstance(s, PrimShape) and s.const is not None and not isinstance(expr, ir.Const):
            if self.p.opt.fold_constants and is_pure(expr):
                return self.lit(s.const, s.ty)
        if isinstance(s, ObjShape) and s.from_snapshot:
            # snapshot objects have no C value; calls still execute
            if isinstance(expr, ir.Call):
                return self.emit_call(expr)
            return "INT64_C(0)"
        return self._raw(expr)

    def _raw(self, expr: ir.Expr) -> str:
        if isinstance(expr, ir.Const):
            return self.lit(expr.value, expr.prim)
        if isinstance(expr, ir.LocalRef):
            return f"v_{expr.name}"
        if isinstance(expr, ir.FieldLoad):
            return self.emit_field(expr)
        if isinstance(expr, ir.ArrayLoad):
            if self.p.bounds_checks and not expr.bounds_ok:
                suf = arr_suffix(expr.arr.ty.elem)
                return (f"wj_ld_{suf}({self.e(expr.arr)}, "
                        f"(int64_t)({self.e(expr.index)}))")
            return f"({self.e(expr.arr)}).p[{self.e(expr.index)}]"
        if isinstance(expr, ir.ArrayLen):
            return f"({self.e(expr.arr)}).n"
        if isinstance(expr, ir.BinOp):
            return self.emit_binop(expr)
        if isinstance(expr, ir.UnaryOp):
            if expr.op == "not":
                return f"(!({self.e(expr.operand)}))"
            return f"(-({self.e(expr.operand)}))"
        if isinstance(expr, ir.Compare):
            return f"(({self.e(expr.left)}) {expr.op} ({self.e(expr.right)}))"
        if isinstance(expr, ir.BoolOp):
            op = "&&" if expr.op == "and" else "||"
            return "(" + f" {op} ".join(f"({self.e(v)})" for v in expr.values) + ")"
        if isinstance(expr, ir.Cast):
            return f"(({expr.to.cname})({self.e(expr.value)}))"
        if isinstance(expr, ir.Call):
            return self.emit_call(expr)
        if isinstance(expr, ir.IntrinsicCall):
            return self.emit_intrinsic(expr)
        if isinstance(expr, ir.NewObj):
            return self.emit_new(expr)
        raise BackendError(f"unhandled IR expression {type(expr).__name__}")

    def emit_binop(self, expr: ir.BinOp) -> str:
        l, r = self.e(expr.left), self.e(expr.right)
        op = expr.op
        if op in ("+", "-", "*"):
            return f"(({l}) {op} ({r}))"
        if op == "/":
            return f"((double)({l}) / (double)({r}))"
        if op == "**":
            return f"pow((double)({l}), (double)({r}))"
        res = expr.res
        if op == "//":
            if res.is_float:
                return f"(({res.cname})wj_floordiv_f64((double)({l}), (double)({r})))"
            return f"(({res.cname})wj_floordiv_i64((int64_t)({l}), (int64_t)({r})))"
        if op == "%":
            if res.is_float:
                return f"(({res.cname})wj_mod_f64((double)({l}), (double)({r})))"
            return f"(({res.cname})wj_mod_i64((int64_t)({l}), (int64_t)({r})))"
        raise BackendError(f"unhandled operator {op!r}")

    def emit_field(self, expr: ir.FieldLoad) -> str:
        oshape = expr.obj.shape
        fshape = expr.shape
        assert isinstance(oshape, ObjShape)
        if oshape.from_snapshot:
            if isinstance(fshape, PrimShape):
                if self.p.opt.fold_constants:
                    return self.lit(fshape.const, fshape.ty)
                member = self.p.scalar_member(oshape.root_path, expr.fname, fshape)
                return f"snap->{member}"
            if isinstance(fshape, ArrayShape):
                member = self.p.arr_member(oshape.root_path, expr.fname, fshape)
                return f"snap->{member}"
            if isinstance(fshape, ObjShape) and fshape.from_snapshot:
                return "INT64_C(0)"  # resolved statically through the shape
            raise BackendError(
                f"snapshot field {expr.fname} with shape {fshape!r}"
            )
        if isinstance(fshape, ObjShape) and fshape.from_snapshot:
            return "INT64_C(0)"
        return f"({self.e(expr.obj)}).f_{expr.fname}"

    def emit_new(self, expr: ir.NewObj) -> str:
        sname = self.p.struct_of(expr.obj_shape)
        inits = []
        if self.p.opt is OptLevel.VIRTUAL:
            member = self.p.clsid_member(expr.cls)
            inits.append(f".cls = snap->{member}")
        for fname, init in expr.field_inits.items():
            fshape = expr.obj_shape.fields[fname]
            if isinstance(fshape, ObjShape) and fshape.from_snapshot:
                continue
            inits.append(f".f_{fname} = {self.value_of(init, fshape)}")
        if not inits:
            inits = [".f_0 = 0"] if False else ["._empty = 0"]
        return f"(({sname}){{ {', '.join(inits)} }})"

    def value_of(self, expr: ir.Expr, want: Optional[Shape]) -> str:
        if (
            isinstance(want, ObjShape)
            and not want.from_snapshot
            and isinstance(expr.shape, ObjShape)
            and expr.shape.from_snapshot
        ):
            return self.snap_to_value(expr.shape, want)
        return self.e(expr)

    def snap_to_value(self, s: ObjShape, want: ObjShape) -> str:
        sname = self.p.struct_of(want)
        inits = []
        if self.p.opt is OptLevel.VIRTUAL:
            inits.append(f".cls = snap->{self.p.clsid_member(s.cls)}")
        for fname, wshape in want.fields.items():
            fshape = s.field(fname)
            if isinstance(wshape, ObjShape) and wshape.from_snapshot:
                continue
            if isinstance(fshape, PrimShape):
                if self.p.opt.fold_constants:
                    inits.append(f".f_{fname} = {self.lit(fshape.const, fshape.ty)}")
                else:
                    member = self.p.scalar_member(s.root_path, fname, fshape)
                    inits.append(f".f_{fname} = snap->{member}")
            elif isinstance(fshape, ArrayShape):
                member = self.p.arr_member(s.root_path, fname, fshape)
                inits.append(f".f_{fname} = snap->{member}")
            elif isinstance(fshape, ObjShape):
                assert isinstance(wshape, ObjShape)
                inits.append(f".f_{fname} = {self.snap_to_value(fshape, wshape)}")
        if not inits:
            inits = ["._empty = 0"]
        return f"(({sname}){{ {', '.join(inits)} }})"

    # -- calls -----------------------------------------------------------

    def _call_args(self, callee_ir: ir.FuncIR, recv, args) -> list[str]:
        out = ["env", "snap"]
        if callee_ir.is_device:
            out.append("geo")
        if callee_ir.self_shape is not None and not callee_ir.self_shape.from_snapshot:
            out.append(self.value_of(recv, callee_ir.self_shape))
        for expr, shape in zip(args, callee_ir.param_shapes):
            if isinstance(shape, ObjShape) and shape.from_snapshot:
                continue
            out.append(self.value_of(expr, shape))
        return out

    def emit_call(self, expr: ir.Call) -> str:
        callee = expr.target
        callee_ir = callee.func_ir
        if self.p.opt.devirtualize:
            args = self._call_args(callee_ir, expr.recv, expr.args)
            return f"{callee.symbol}({', '.join(args)})"
        return self.emit_virtual_call(expr)

    def emit_virtual_call(self, expr: ir.Call) -> str:
        """VIRTUAL mode: dispatch through a runtime-filled, volatile
        function-pointer table — the paper's naive-C++ comparator."""
        callee = expr.target
        callee_ir = callee.func_ir
        site = self.p.site_member(expr.site_id)
        ret, _, ctys = self.p.csig(callee)
        cast = f"{ret} (*)({', '.join(ctys)})"
        recv_shape = expr.recv.shape
        concrete = recv_shape.cls
        self.p._bind_lines.append(
            f"snap->{site}[snap->{self.p.clsid_member(concrete)}] = "
            f"(void*)&{callee.symbol};"
        )
        recv_passed = (
            callee_ir.self_shape is not None
            and not callee_ir.self_shape.from_snapshot
        )
        if isinstance(recv_shape, ObjShape) and recv_shape.from_snapshot:
            cls_expr = f"snap->{self.p.objcls_member(recv_shape)}"
            args = ["env", "snap"]
            if callee_ir.is_device:
                args.append("geo")
            for e2, shape in zip(expr.args, callee_ir.param_shapes):
                if isinstance(shape, ObjShape) and shape.from_snapshot:
                    continue
                args.append(self.value_of(e2, shape))
            return (
                f"((({cast})(snap->{site}[{cls_expr}])))({', '.join(args)})"
            )
        # dynamic receiver: evaluate once into a temp (GNU statement expr)
        recv_cty = self.p.ctype(recv_shape)
        args = ["env", "snap"]
        if callee_ir.is_device:
            args.append("geo")
        if recv_passed:
            args.append("__r")
        for e2, shape in zip(expr.args, callee_ir.param_shapes):
            if isinstance(shape, ObjShape) and shape.from_snapshot:
                continue
            args.append(self.value_of(e2, shape))
        return (
            f"({{ {recv_cty} __r = {self.value_of(expr.recv, callee_ir.self_shape or recv_shape)}; "
            f"((({cast})(snap->{site}[__r.cls])))({', '.join(args)}); }})"
        )

    # -- intrinsics --------------------------------------------------------

    def _suf(self, expr: ir.Expr) -> str:
        assert isinstance(expr.ty, _t.ArrayType)
        return arr_suffix(expr.ty.elem)

    def emit_intrinsic(self, x: ir.IntrinsicCall) -> str:
        key = x.key
        a = [self.e(v) for v in x.args]
        if key == "mpi.rank":
            return "env->mpi_rank(env->h)"
        if key == "mpi.size":
            return "env->mpi_size(env->h)"
        if key == "mpi.send":
            return f"wj_mpi_send_{self._suf(x.args[0])}(env, {a[0]}, (int64_t)({a[1]}), (int64_t)({a[2]}))"
        if key == "mpi.recv":
            return f"wj_mpi_recv_{self._suf(x.args[0])}(env, {a[0]}, (int64_t)({a[1]}), (int64_t)({a[2]}))"
        if key == "mpi.sendrecv":
            return (
                f"wj_mpi_sendrecv_{self._suf(x.args[0])}(env, {a[0]}, "
                f"(int64_t)({a[1]}), {a[2]}, (int64_t)({a[3]}), (int64_t)({a[4]}))"
            )
        if key == "mpi.send_part":
            return (
                f"wj_mpi_send_part_{self._suf(x.args[0])}(env, {a[0]}, "
                f"(int64_t)({a[1]}), (int64_t)({a[2]}), (int64_t)({a[3]}), "
                f"(int64_t)({a[4]}))"
            )
        if key == "mpi.recv_part":
            return (
                f"wj_mpi_recv_part_{self._suf(x.args[0])}(env, {a[0]}, "
                f"(int64_t)({a[1]}), (int64_t)({a[2]}), (int64_t)({a[3]}), "
                f"(int64_t)({a[4]}))"
            )
        if key == "mpi.sendrecv_part":
            return (
                f"wj_mpi_sendrecv_part_{self._suf(x.args[0])}(env, {a[0]}, "
                f"(int64_t)({a[1]}), (int64_t)({a[2]}), (int64_t)({a[3]}), "
                f"{a[4]}, (int64_t)({a[5]}), (int64_t)({a[6]}), "
                f"(int64_t)({a[7]}))"
            )
        if key == "mpi.barrier":
            return "env->mpi_barrier(env->h)"
        if key == "mpi.allreduce_sum":
            return f"env->mpi_allreduce_sum(env->h, (double)({a[0]}))"
        if key == "mpi.allreduce_sum_arr":
            return f"wj_mpi_allreduce_{self._suf(x.args[0])}(env, {a[0]})"
        if key == "mpi.bcast":
            return f"wj_mpi_bcast_{self._suf(x.args[0])}(env, {a[0]}, (int64_t)({a[1]}))"
        if key == "mpi.gather":
            return f"wj_mpi_gather_{self._suf(x.args[0])}(env, {a[0]}, {a[1]}, (int64_t)({a[2]}))"
        if key == "mpi.wtime":
            return "env->mpi_wtime(env->h)"
        if key.startswith("cuda.tid."):
            sub = key.split(".")[-1]
            if sub == "sync":
                raise BackendError(
                    "cuda.sync_threads() is not supported by the C backend "
                    "(run barrier kernels through the Python simulated "
                    "device); restructure the kernel to be barrier-free"
                )
            return f"geo->{_GEO_FIELD[sub]}"
        if key in ("cuda.copy_to_gpu", "cuda.copy_from_gpu"):
            return f"wj_gpu_copy_{self._suf(x.args[0])}(env, {a[0]})"
        if key == "cuda.device_zeros" or key == "wj.zeros":
            elem = x.const_args[0]
            return f"wj_zeros_{arr_suffix(elem)}((int64_t)({a[0]}))"
        if key in ("cuda.free_gpu", "wj.free"):
            return f"wj_free_{self._suf(x.args[0])}({a[0]})"
        if key == "wj.output":
            label = x.const_args[0]
            return f"wj_output_{self._suf(x.args[0])}(env, {c_str(label)}, {a[0]})"
        if key == "wj.dgemm":
            self.p._uses_dgemm = True
            return (
                f"wj_dgemm({a[0]}, {a[1]}, {a[2]}, (int64_t)({a[3]}), "
                f"(int64_t)({a[4]}), (int64_t)({a[5]}))"
            )
        if key == "wj.lcg64":
            return f"wj_lcg64((int64_t)({a[0]}))"
        if key == "wj.u01":
            return f"wj_u01((int64_t)({a[0]}))"
        if key.startswith("math."):
            fn = _MATH_C[key.split(".")[1]]
            return f"{fn}({', '.join(f'(double)({v})' for v in a)})"
        if key == "builtin.abs":
            ty = x.res_ty
            if ty is _t.F64:
                return f"fabs({a[0]})"
            if ty is _t.F32:
                return f"fabsf({a[0]})"
            if ty is _t.I32:
                return f"wj_abs_i32({a[0]})"
            return f"wj_abs_i64({a[0]})"
        if key in ("builtin.min", "builtin.max"):
            which = key.split(".")[1]
            ty = x.res_ty
            suf = {id(_t.F64): "f64", id(_t.F32): "f32", id(_t.I32): "i32", id(_t.I64): "i64"}[id(ty)]
            return f"wj_{which}_{suf}({a[0]}, {a[1]})"
        if key.startswith("ffi."):
            ff = x.const_args[0]
            self.p._ffi[ff.cname] = ff
            return f"{ff.cname}({', '.join(a)})"
        raise BackendError(f"unknown intrinsic {key}")

    # -- statements ----------------------------------------------------------

    def stmt(self, w: _Writer, s: ir.Stmt) -> None:
        if isinstance(s, (ir.LocalDecl, ir.Assign)):
            want = self.p.local_shapes[self.spec.symbol].get(s.name)
            w.line(f"v_{s.name} = {self.value_of(s.value, want)};")
            return
        if isinstance(s, ir.FieldStore):
            oshape = s.obj.shape
            fshape = oshape.field(s.fname)
            member = self.p.arr_member(oshape.root_path, s.fname, fshape)
            w.line(f"snap->{member} = {self.e(s.value)};")
            return
        if isinstance(s, ir.ArrayStore):
            # bounds_ok accesses were proven in-range by the bce pass
            # (repro.opt.cfg.ranges) — the guard would be dead code
            if self.p.bounds_checks and not s.bounds_ok:
                suf = arr_suffix(s.arr.ty.elem)
                elem_c = s.arr.ty.elem.cname
                w.line(
                    f"wj_st_{suf}({self.e(s.arr)}, "
                    f"(int64_t)({self.e(s.index)}), "
                    f"({elem_c})({self.e(s.value)}));"
                )
                return
            w.line(
                f"({self.e(s.arr)}).p[{self.e(s.index)}] = {self.e(s.value)};"
            )
            return
        if isinstance(s, ir.If):
            w.line(f"if ({self.e(s.cond)}) {{")
            self.block(w, s.then)
            if s.orelse:
                w.line("} else {")
                self.block(w, s.orelse)
            w.line("}")
            return
        if isinstance(s, ir.ForRange):
            self.emit_for(w, s)
            return
        if isinstance(s, ir.While):
            w.line(f"while ({self.e(s.cond)}) {{")
            self.block(w, s.body)
            w.line("}")
            return
        if isinstance(s, ir.Return):
            if s.value is None:
                w.line("return;")
            else:
                w.line(f"return {self.value_of(s.value, self.f.ret_shape)};")
            return
        if isinstance(s, ir.ExprStmt):
            if isinstance(s.value, ir.KernelLaunch):
                self.emit_launch(w, s.value)
                return
            text = self.e(s.value)
            if s.value.ty is _t.VOID:
                w.line(f"{text};")
            else:
                w.line(f"(void)({text});")
            return
        if isinstance(s, ir.Break):
            w.line("break;")
            return
        if isinstance(s, ir.Continue):
            w.line("continue;")
            return
        raise BackendError(f"unhandled statement {type(s).__name__}")

    def block(self, w: _Writer, stmts) -> None:
        w.depth += 1
        for s in stmts:
            self.stmt(w, s)
        w.depth -= 1

    def emit_for(self, w: _Writer, s: ir.ForRange) -> None:
        plan = self.p.parallel_plan
        if plan is not None:
            d = plan.decision_for(s)
            if d is not None and d.parallel:
                self._emit_parallel_for(w, s, d)
                return
        self._tmp += 1
        n = self._tmp
        var = f"v_{s.var}"
        start = self.e(s.start)
        stop = self.e(s.stop)
        # range() bounds evaluate once (Python semantics): hoist unless literal
        if not _is_literal(stop):
            w.line(f"{{ int64_t __b{n} = {stop};")
            stop = f"__b{n}"
            closing = True
        else:
            closing = False
        if s.step is None:
            w.line(f"for ({var} = {start}; {var} < {stop}; {var}++) {{")
        else:
            step = self.e(s.step)
            w.line(f"{{ int64_t __c{n} = {step};")
            w.line(
                f"for ({var} = {start}; (__c{n} > 0) ? ({var} < {stop}) : "
                f"({var} > {stop}); {var} += __c{n}) {{"
            )
        self.block(w, s.body)
        w.line("}")
        if s.step is not None:
            w.line("}")
        if closing:
            w.line("}")

    def _guard_lvalue(self, handle) -> str:
        if handle[0] == "var":
            return f"v_{handle[1]}"
        _, path, fname, shape = handle
        return f"snap->{self.p.arr_member(path, fname, shape)}"

    def _emit_parallel_for(self, w: _Writer, s: ir.ForRange, d) -> None:
        """A loop the independence analysis proved parallel: emit it under
        `#pragma omp parallel for`; when runtime alias guards are needed,
        version it — parallel when every guarded base-pointer pair differs,
        the plain sequential loop otherwise."""
        self._tmp += 1
        n = self._tmp
        var = f"v_{s.var}"
        start = self.e(s.start)
        stop = self.e(s.stop)
        closing = False
        if not _is_literal(stop):
            w.line(f"{{ int64_t __b{n} = {stop};")
            stop = f"__b{n}"
            closing = True
        header = f"for ({var} = {start}; {var} < {stop}; {var}++) {{"
        pragma = "#pragma omp parallel for schedule(static)"
        if d.private:
            pragma += " private(" + ", ".join(f"v_{p}" for p in d.private) + ")"
        for op, name, _is_float in d.reductions:
            pragma += f" reduction({op}:v_{name})"
        threads = self.p.parallel_plan.threads
        if threads:
            pragma += f" num_threads({threads})"
        if d.guards:
            cond = " && ".join(
                f"(({self._guard_lvalue(a)}).p != ({self._guard_lvalue(b)}).p)"
                for a, b in d.guards
            )
            w.line(f"if ({cond}) {{")
        w.line(pragma)
        w.line(header)
        self.block(w, s.body)
        w.line("}")
        if d.guards:
            w.line("} else {")
            w.line(header)
            self.block(w, s.body)
            w.line("}")
            w.line("}")
        if closing:
            w.line("}")

    def emit_launch(self, w: _Writer, e: ir.KernelLaunch) -> None:
        callee = e.target
        callee_ir = callee.func_ir
        self._tmp += 1
        n = self._tmp
        dims = {}
        for which in ("grid", "block"):
            for comp in "xyz":
                dims[f"{which}_{comp}"] = self.dim_expr(e.config, which, comp)
        w.line("env->kernel_begin(env->h);")
        w.line("{")
        w.depth += 1
        w.line("WjGeo __g;")
        for name, expr_s in dims.items():
            w.line(f"int64_t __{name}{n} = {expr_s};")
        w.line(f"__g.gdx = __grid_x{n}; __g.gdy = __grid_y{n}; __g.gdz = __grid_z{n};")
        w.line(f"__g.bdx = __block_x{n}; __g.bdy = __block_y{n}; __g.bdz = __block_z{n};")
        # hoist kernel arguments: evaluated once per launch, like <<< >>>
        hoisted = []
        k = 0
        if callee_ir.self_shape is not None and not callee_ir.self_shape.from_snapshot:
            cty = self.p.ctype(callee_ir.self_shape)
            w.line(f"{cty} __ka{k} = {self.value_of(e.recv, callee_ir.self_shape)};")
            hoisted.append(f"__ka{k}")
            k += 1
        for expr, shape in zip(e.args, callee_ir.param_shapes):
            if isinstance(shape, ObjShape) and shape.from_snapshot:
                continue
            cty = self.p.ctype(shape)
            w.line(f"{cty} __ka{k} = {self.value_of(expr, shape)};")
            hoisted.append(f"__ka{k}")
            k += 1
        args = ["env", "snap", "&__g"] + hoisted
        w.line(f"for (__g.bz = 0; __g.bz < __grid_z{n}; __g.bz++)")
        w.line(f"for (__g.by = 0; __g.by < __grid_y{n}; __g.by++)")
        w.line(f"for (__g.bx = 0; __g.bx < __grid_x{n}; __g.bx++)")
        w.line(f"for (__g.tz = 0; __g.tz < __block_z{n}; __g.tz++)")
        w.line(f"for (__g.ty = 0; __g.ty < __block_y{n}; __g.ty++)")
        w.line(f"for (__g.tx = 0; __g.tx < __block_x{n}; __g.tx++)")
        w.line(f"    {callee.symbol}({', '.join(args)});")
        w.depth -= 1
        w.line("}")
        w.line("env->kernel_end(env->h);")

    def dim_expr(self, config: ir.Expr, which: str, comp: str) -> str:
        cshape = config.shape
        assert isinstance(cshape, ObjShape)
        dshape = cshape.field(which)
        assert isinstance(dshape, ObjShape)
        pshape = dshape.field(comp)
        assert isinstance(pshape, PrimShape)
        if pshape.const is not None and self.p.opt.fold_constants:
            return self.lit(pshape.const, pshape.ty)
        if cshape.from_snapshot:
            if pshape.const is None:
                raise BackendError("snapshot CudaConfig without constant dims")
            if self.p.opt.fold_constants:
                return self.lit(pshape.const, pshape.ty)
            member = self.p.scalar_member(
                dshape.root_path, comp, pshape
            )
            return f"snap->{member}"
        if pshape.const is not None and not self.p.opt.fold_constants:
            # dynamic config with known value but folding disabled: emit the
            # structural access so the comparator pays the load
            pass
        inner = self.e(config)
        if isinstance(dshape, ObjShape) and dshape.from_snapshot:
            raise BackendError("mixed snapshot/dynamic CudaConfig")
        return f"({inner}).f_{which}.f_{comp}"

    # -- function shell --------------------------------------------------------

    def emit_function(self, out: _Writer) -> None:
        ret, decls, _ = self.p.csig(self.spec)
        out.line(f"{ret} {self.spec.symbol}({', '.join(decls)}) {{")
        out.depth += 1
        out.line("(void)env; (void)snap;")
        if self.f.is_device:
            out.line("(void)geo;")
        # hoisted local declarations (conditional first-assignments must
        # outlive their C block scope)
        param_names = {"self", *self.f.param_names}
        for name, shape in self.p.local_shapes[self.spec.symbol].items():
            if name in param_names:
                continue
            out.line(f"{self.p.ctype(shape)} v_{name};")
        for s in self.f.body:
            self.stmt(out, s)
        if ret != "void":
            pass  # lowering guarantees all paths return
        out.depth -= 1
        out.line("}")
        out.line("")


def _is_literal(text: str) -> bool:
    t = text.strip("()")
    if t.startswith("INT64_C(") and t.endswith(")"):
        t = t[len("INT64_C("):-1]
    return bool(t) and (t[0].isdigit() or (t[0] == "-" and t[1:2].isdigit()))

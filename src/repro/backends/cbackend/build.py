"""Native build driver: generated C → shared object.

Reproduces the paper's Tables 1 and 2 (compiler options per program
variant): each :class:`~repro.backends.base.OptLevel` maps to a flag set in
:data:`FLAG_SETS` — the analogue of the icc option rows, adapted to gcc.
Artifacts are cached by content hash, so re-JITting an identical program is
free while first-time compilations are honestly measured (paper Table 3).

Programs with enough specializations are split into per-specialization
translation units and compiled concurrently (``build_shared_object`` with
``units``): each unit becomes an object file built in a thread pool, then
the objects are linked into the shared library.  ``REPRO_CC_JOBS`` caps the
pool (default: the CPU count), ``REPRO_PARALLEL_CC=0`` forces the
single-unit path.  Both paths produce the same cache digest — keyed on the
canonical single-unit source — so warm lookups never depend on build mode.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.backends.base import OptLevel
from repro.errors import BackendError, CompilationUnavailable
from repro.obs.trace import span as _span

__all__ = [
    "BuildStats",
    "FLAG_SETS",
    "blas_flags",
    "build_shared_object",
    "cc_version",
    "compile_shared_object",
    "compiler_available",
    "openmp_flag",
]


#: per-comparator compiler options (the analogue of the paper's Table 1/2)
FLAG_SETS: dict[OptLevel, list[str]] = {
    OptLevel.VIRTUAL: ["-O3", "-fno-lto"],
    OptLevel.DEVIRT: ["-O3", "-march=native"],
    OptLevel.NOVIRT: ["-O3", "-march=native"],
    OptLevel.FULL: ["-O3", "-march=native", "-funroll-loops"],
}

_COMMON = ["-std=c99", "-shared", "-fPIC", "-lm", "-w"]


def _find_cc() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def compiler_available() -> bool:
    """Whether a usable C compiler was found ($CC, cc, gcc, clang)."""
    return _find_cc() is not None


def cc_version() -> str:
    """Human-readable identification of the compiler in use."""
    cc = _find_cc()
    if cc is None:
        return "none"
    out = subprocess.run([cc, "--version"], capture_output=True, text=True)
    return out.stdout.splitlines()[0] if out.stdout else cc


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CC_CACHE") or os.path.join(
        tempfile.gettempdir(), "repro-cc-cache"
    )
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class BuildStats:
    """How one shared object was produced (surfaced in ``JitReport``)."""

    mode: str = "single"        # "single" | "parallel" | "cached"
    units: int = 1              # translation units compiled
    jobs: int = 1               # thread-pool width actually used
    compile_s: float = 0.0      # summed per-unit compiler time
    link_s: float = 0.0         # final link (parallel mode only)
    wall_s: float = 0.0         # end-to-end build wall clock
    cached: bool = False        # artifact served from the content-hash cache

    def as_dict(self) -> dict:
        return asdict(self)


_MIN_PARALLEL_UNITS = 4


def _build_jobs() -> int:
    env = os.environ.get("REPRO_CC_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _parallel_enabled() -> bool:
    from repro.env import env_flag

    return env_flag("REPRO_PARALLEL_CC", default=True)


def _run_cc(cmd: list[str]) -> None:
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise BackendError(
            f"C compilation failed ({' '.join(cmd)}):\n{proc.stderr[-4000:]}"
        )


def _probe(cc: str, source: str, extra: list[str]) -> bool:
    """Whether `source` compiles+links as a shared object with `extra`."""
    with tempfile.TemporaryDirectory(prefix="repro-cc-probe-") as td:
        c_path = os.path.join(td, "probe.c")
        with open(c_path, "w") as fh:
            fh.write(source)
        proc = subprocess.run(
            [cc, c_path, "-o", os.path.join(td, "probe.so"),
             "-std=c99", "-shared", "-fPIC", "-w", *extra],
            capture_output=True, text=True,
        )
        return proc.returncode == 0


_OMP_PROBE: dict[str, str | None] = {}
_BLAS_PROBE: dict[str, tuple[str, ...] | None] = {}

_OMP_PROBE_SRC = (
    "#include <omp.h>\n"
    "int wj_probe(void) { return omp_get_max_threads(); }\n"
)
_BLAS_PROBE_SRC = (
    "void cblas_dgemm(int, int, int, int, int, int, double, const double*,"
    " int, const double*, int, double, double*, int);\n"
    "double a[1], b[1], c[1];\n"
    "void wj_probe(void) {"
    " cblas_dgemm(101, 111, 111, 1, 1, 1, 1.0, a, 1, b, 1, 0.0, c, 1); }\n"
)
#: candidate BLAS link lines, most common first
_BLAS_CANDIDATES = (("-lopenblas",), ("-lcblas",), ("-lcblas", "-lblas"),
                    ("-lblas",))


def openmp_flag(cc: str | None = None) -> str | None:
    """``-fopenmp`` when the toolchain supports it, else None (the emitted
    pragmas are then ignored and execution degrades to sequential).
    Memoized per compiler."""
    cc = cc or _find_cc()
    if cc is None:
        return None
    if cc not in _OMP_PROBE:
        _OMP_PROBE[cc] = (
            "-fopenmp" if _probe(cc, _OMP_PROBE_SRC, ["-fopenmp"]) else None
        )
    return _OMP_PROBE[cc]


def blas_flags(cc: str | None = None) -> tuple[str, ...] | None:
    """Link flags for a system CBLAS providing cblas_dgemm, or None when no
    BLAS links.  Memoized per compiler."""
    cc = cc or _find_cc()
    if cc is None:
        return None
    if cc not in _BLAS_PROBE:
        found = None
        for cand in _BLAS_CANDIDATES:
            if _probe(cc, _BLAS_PROBE_SRC, list(cand)):
                found = cand
                break
        _BLAS_PROBE[cc] = found
    return _BLAS_PROBE[cc]


def build_shared_object(
    source: str, opt: OptLevel, *, units: "list[str] | None" = None,
    bounds_checks: bool = False, openmp: bool = False, blas: bool = False,
) -> tuple[Path, BuildStats]:
    """Compile C source to a cached .so; returns ``(path, BuildStats)``.

    ``units`` optionally carries per-specialization translation units (from
    :class:`~repro.backends.cbackend.emit.EmitResult`); when there are at
    least ``_MIN_PARALLEL_UNITS`` of them and more than one build job is
    available, they are compiled concurrently and linked.  The artifact
    digest is always computed from the canonical ``source``, so both build
    modes hit the same cache entry.

    The whole build runs under a ``cc.build`` tracing span; parallel mode
    adds one ``cc.compile`` span per translation unit (on its pool thread)
    and a ``cc.link`` span.
    """
    with _span("cc.build") as sp:
        path, stats = _build_impl(source, opt, units=units,
                                  bounds_checks=bounds_checks,
                                  openmp=openmp, blas=blas)
        sp.set(mode=stats.mode, units=stats.units, jobs=stats.jobs,
               cached=stats.cached)
        return path, stats


def _build_impl(
    source: str, opt: OptLevel, *, units: "list[str] | None",
    bounds_checks: bool, openmp: bool = False, blas: bool = False,
) -> tuple[Path, BuildStats]:
    cc = _find_cc()
    if cc is None:
        raise CompilationUnavailable(
            "no C compiler found (set $CC or install gcc/clang), or use "
            "backend='py'"
        )
    t0 = time.perf_counter()
    flags = list(FLAG_SETS[opt]) + _COMMON
    if bounds_checks:
        flags.append("-DWJ_BOUNDS=1")
    if openmp:
        omp = openmp_flag(cc)
        if omp:
            flags.append(omp)
    if blas:
        libs = blas_flags(cc)
        if libs:
            # the define selects the cblas path in the prelude; the link
            # flags resolve it.  Both are part of `flags`, hence the digest.
            flags.append("-DWJ_HAVE_CBLAS")
            flags.extend(libs)
    digest = hashlib.sha256(
        (source + "\x00" + " ".join(flags) + "\x00" + cc).encode()
    ).hexdigest()[:24]
    cache = _cache_dir()
    so_path = cache / f"wj_{digest}.so"
    if so_path.exists():
        return so_path, BuildStats(mode="cached", cached=True,
                                   wall_s=time.perf_counter() - t0)

    jobs = _build_jobs()
    use_parallel = (
        units is not None
        and len(units) >= _MIN_PARALLEL_UNITS
        and jobs > 1
        and _parallel_enabled()
    )
    tmp_out = cache / f"wj_{digest}.so.tmp{os.getpid()}"
    if use_parallel:
        # per-unit flags: the opt set minus the link-only options, plus -c
        unit_flags = [f for f in flags
                      if f != "-shared" and not f.startswith("-l")]
        link_extra = [f for f in flags
                      if f.startswith("-l") and f != "-lm"]
        if openmp and openmp_flag(cc):
            link_extra.append(openmp_flag(cc))
        obj_paths: list[Path] = []
        for i, unit in enumerate(units):
            c_path = cache / f"wj_{digest}_u{i}.c"
            c_path.write_text(unit)
            obj_paths.append(cache / f"wj_{digest}_u{i}.o.tmp{os.getpid()}")
        t_compile = time.perf_counter()
        workers = min(jobs, len(units))

        def compile_unit(i: int) -> None:
            with _span("cc.compile", unit=i):
                _run_cc([cc, "-c", str(cache / f"wj_{digest}_u{i}.c"),
                         "-o", str(obj_paths[i]), *unit_flags])

        try:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # materialize to propagate the first failure
                list(pool.map(compile_unit, range(len(units))))
            compile_s = time.perf_counter() - t_compile
            t_link = time.perf_counter()
            with _span("cc.link", units=len(units)):
                _run_cc([cc, "-shared", "-fPIC",
                         *[str(p) for p in obj_paths], "-o", str(tmp_out),
                         "-lm", *link_extra])
            link_s = time.perf_counter() - t_link
        finally:
            for p in obj_paths:
                try:
                    p.unlink()
                except OSError:
                    pass
        os.replace(tmp_out, so_path)
        return so_path, BuildStats(
            mode="parallel", units=len(units), jobs=workers,
            compile_s=compile_s, link_s=link_s,
            wall_s=time.perf_counter() - t0,
        )

    c_path = cache / f"wj_{digest}.c"
    c_path.write_text(source)
    t_compile = time.perf_counter()
    with _span("cc.compile", unit=0):
        _run_cc([cc, str(c_path), "-o", str(tmp_out), *flags])
    compile_s = time.perf_counter() - t_compile
    os.replace(tmp_out, so_path)
    return so_path, BuildStats(mode="single", compile_s=compile_s,
                               wall_s=time.perf_counter() - t0)


def compile_shared_object(source: str, opt: OptLevel, *, bounds_checks: bool = False) -> tuple[Path, bool]:
    """Compile C source to a cached .so.  Returns (path, was_cached).

    Compatibility wrapper over :func:`build_shared_object` (single-unit)."""
    path, stats = build_shared_object(source, opt, bounds_checks=bounds_checks)
    return path, stats.cached

"""Native build driver: generated C → shared object.

Reproduces the paper's Tables 1 and 2 (compiler options per program
variant): each :class:`~repro.backends.base.OptLevel` maps to a flag set in
:data:`FLAG_SETS` — the analogue of the icc option rows, adapted to gcc.
Artifacts are cached by content hash, so re-JITting an identical program is
free while first-time compilations are honestly measured (paper Table 3).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.backends.base import OptLevel
from repro.errors import BackendError, CompilationUnavailable

__all__ = ["compiler_available", "compile_shared_object", "FLAG_SETS", "cc_version"]


#: per-comparator compiler options (the analogue of the paper's Table 1/2)
FLAG_SETS: dict[OptLevel, list[str]] = {
    OptLevel.VIRTUAL: ["-O3", "-fno-lto"],
    OptLevel.DEVIRT: ["-O3", "-march=native"],
    OptLevel.NOVIRT: ["-O3", "-march=native"],
    OptLevel.FULL: ["-O3", "-march=native", "-funroll-loops"],
}

_COMMON = ["-std=c99", "-shared", "-fPIC", "-lm", "-w"]


def _find_cc() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def compiler_available() -> bool:
    """Whether a usable C compiler was found ($CC, cc, gcc, clang)."""
    return _find_cc() is not None


def cc_version() -> str:
    """Human-readable identification of the compiler in use."""
    cc = _find_cc()
    if cc is None:
        return "none"
    out = subprocess.run([cc, "--version"], capture_output=True, text=True)
    return out.stdout.splitlines()[0] if out.stdout else cc


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CC_CACHE") or os.path.join(
        tempfile.gettempdir(), "repro-cc-cache"
    )
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def compile_shared_object(source: str, opt: OptLevel, *, bounds_checks: bool = False) -> tuple[Path, bool]:
    """Compile C source to a cached .so.  Returns (path, was_cached)."""
    cc = _find_cc()
    if cc is None:
        raise CompilationUnavailable(
            "no C compiler found (set $CC or install gcc/clang), or use "
            "backend='py'"
        )
    flags = list(FLAG_SETS[opt]) + _COMMON
    if bounds_checks:
        flags.append("-DWJ_BOUNDS=1")
    digest = hashlib.sha256(
        (source + "\x00" + " ".join(flags) + "\x00" + cc).encode()
    ).hexdigest()[:24]
    cache = _cache_dir()
    so_path = cache / f"wj_{digest}.so"
    if so_path.exists():
        return so_path, True
    c_path = cache / f"wj_{digest}.c"
    c_path.write_text(source)
    tmp_out = cache / f"wj_{digest}.so.tmp{os.getpid()}"
    cmd = [cc, str(c_path), "-o", str(tmp_out), *flags]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise BackendError(
            f"C compilation failed ({' '.join(cmd)}):\n{proc.stderr[-4000:]}"
        )
    os.replace(tmp_out, so_path)
    return so_path, False

"""Code-generation backends.

* :mod:`repro.backends.cbackend` — the paper's path: emit C99, compile with
  the system C compiler, load via ctypes, call with deep-copied arguments.
  Supports all optimization levels (the ablation that realizes the paper's
  C++/Template/WootinJ comparators).
* :mod:`repro.backends.pybackend` — emit flat specialized Python and
  ``exec`` it.  Portable fallback and differential-testing oracle; always
  full optimization.
"""

from repro.backends.base import Backend, CompiledProgram, OptLevel

__all__ = ["Backend", "CompiledProgram", "OptLevel"]

"""Flat-Python emitter.

Emits one Python module per program: every specialization becomes a plain
function with all dynamic dispatch resolved, all objects either folded away
(snapshot objects: primitive fields are literals, array fields live in a
per-rank ``__snap`` namespace) or scalarized into tuples (dynamic objects) —
i.e. the paper's devirtualization + object inlining, expressed in Python.

This backend exists for portability (no C compiler needed) and as the
differential-testing oracle for the C backend; it always emits at full
optimization.
"""

from __future__ import annotations

import math
from types import SimpleNamespace
from typing import Sequence

import numpy as np

from repro.backends.base import (
    Backend,
    CompiledProgram,
    OptLevel,
    compute_local_shapes,
    is_pure,
    passed_params,
)
from repro.errors import BackendError
from repro.frontend import ir
from repro.frontend.shapes import ArrayShape, ObjShape, PrimShape, Shape
from repro.jit.program import Program
from repro.lang import types as _t
from repro.lang.intrinsics import _dgemm_py, _lcg64_py, _u01_py, intrinsic_registry

__all__ = ["PyBackend"]


def snap_attr(path: str) -> str:
    """Mangle a snapshot path ('self.solver') to an attribute name."""
    return path.replace(".", "_")


_GEO_INDEX = {
    "tid_x": "[0][0]", "tid_y": "[0][1]", "tid_z": "[0][2]",
    "bid_x": "[1][0]", "bid_y": "[1][1]", "bid_z": "[1][2]",
    "bdim_x": "[2][0]", "bdim_y": "[2][1]", "bdim_z": "[2][2]",
    "gdim_x": "[3][0]", "gdim_y": "[3][1]", "gdim_z": "[3][2]",
}


class _Writer:
    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _FuncEmitter:
    """Emits one specialized function."""

    def __init__(self, backend: "_ProgramEmitter", func_ir: ir.FuncIR):
        self.p = backend
        self.f = func_ir
        self.w = backend.w
        self._tmp = 0

    # -- helpers -----------------------------------------------------------

    def tmp(self) -> str:
        self._tmp += 1
        return f"__t{self._tmp}"

    def lit(self, value, prim: _t.PrimType) -> str:
        if prim is _t.BOOL:
            return "True" if value else "False"
        if prim.is_float:
            return repr(float(value))
        return repr(int(value))

    # -- expression emission ------------------------------------------------

    def emit(self, e: ir.Expr) -> str:
        # constant folding: the payoff of semi-immutability
        s = e.shape
        if (
            isinstance(s, PrimShape)
            and s.const is not None
            and not isinstance(e, ir.Const)
            and is_pure(e)
        ):
            return self.lit(s.const, s.ty)
        if isinstance(s, ObjShape) and s.from_snapshot:
            return f"__snap.{snap_attr(s.root_path)}"
        return self._emit_raw(e)

    def _emit_raw(self, e: ir.Expr) -> str:
        if isinstance(e, ir.Const):
            return self.lit(e.value, e.prim)
        if isinstance(e, ir.LocalRef):
            return e.name
        if isinstance(e, ir.FieldLoad):
            return self.emit_field(e.obj, e.fname, e.shape)
        if isinstance(e, ir.ArrayLoad):
            if self.p.bounds_checks and not e.bounds_ok:
                return f"__wj_ld({self.emit(e.arr)}, {self.emit(e.index)})"
            return f"{self.emit(e.arr)}[{self.emit(e.index)}]"
        if isinstance(e, ir.ArrayLen):
            return f"len({self.emit(e.arr)})"
        if isinstance(e, ir.BinOp):
            op = {"**": "**"}.get(e.op, e.op)
            return f"({self.emit(e.left)} {op} {self.emit(e.right)})"
        if isinstance(e, ir.UnaryOp):
            if e.op == "not":
                return f"(not {self.emit(e.operand)})"
            return f"(-{self.emit(e.operand)})"
        if isinstance(e, ir.Compare):
            return f"({self.emit(e.left)} {e.op} {self.emit(e.right)})"
        if isinstance(e, ir.BoolOp):
            joiner = f" {e.op} "
            return "(" + joiner.join(self.emit(v) for v in e.values) + ")"
        if isinstance(e, ir.Cast):
            return self.emit_cast(e)
        if isinstance(e, ir.Call):
            return self.emit_call(e)
        if isinstance(e, ir.IntrinsicCall):
            return self.emit_intrinsic(e)
        if isinstance(e, ir.NewObj):
            return self.emit_new(e)
        if isinstance(e, ir.KernelLaunch):
            raise BackendError("kernel launch in expression position")
        raise BackendError(f"unhandled IR node {type(e).__name__}")

    def emit_field(self, obj: ir.Expr, fname: str, fshape: Shape) -> str:
        oshape = obj.shape
        assert isinstance(oshape, ObjShape)
        if oshape.from_snapshot:
            # array fields live in the snapshot namespace; scalars folded by
            # emit(); object fields resolve to child namespaces via shape
            if isinstance(fshape, ArrayShape):
                return f"__snap.{snap_attr(oshape.root_path)}.{fname}"
            if isinstance(fshape, ObjShape) and fshape.from_snapshot:
                return f"__snap.{snap_attr(fshape.root_path)}"
            if isinstance(fshape, PrimShape) and fshape.const is not None:
                return self.lit(fshape.const, fshape.ty)
            raise BackendError(
                f"snapshot field {fname} has unexpected shape {fshape!r}"
            )
        idx = list(oshape.fields).index(fname)
        return f"{self.emit(obj)}[{idx}]"

    def emit_cast(self, e: ir.Cast) -> str:
        inner = self.emit(e.value)
        to = e.to
        if to is _t.F32:
            return f"__f32({inner})"
        if to is _t.F64:
            return f"float({inner})"
        if to is _t.I32:
            return f"__i32({inner})"
        if to is _t.I64:
            return f"int({inner})"
        if to is _t.BOOL:
            return f"bool({inner})"
        raise BackendError(f"unsupported cast target {to!r}")

    def value_of(self, e: ir.Expr, want: Shape) -> str:
        """Emit e, converting a snapshot-shaped object into a dynamic tuple
        value when the consumer's merged shape is dynamic."""
        if (
            isinstance(want, ObjShape)
            and not want.from_snapshot
            and isinstance(e.shape, ObjShape)
            and e.shape.from_snapshot
        ):
            return self.snap_to_value(e.shape, want)
        return self.emit(e)

    def snap_to_value(self, s: ObjShape, want: ObjShape) -> str:
        parts = []
        for fname, wshape in want.fields.items():
            fshape = s.field(fname)
            if isinstance(fshape, PrimShape):
                parts.append(self.lit(fshape.const, fshape.ty))
            elif isinstance(fshape, ArrayShape):
                parts.append(f"__snap.{snap_attr(s.root_path)}.{fname}")
            elif isinstance(fshape, ObjShape):
                inner_want = wshape if isinstance(wshape, ObjShape) else fshape
                if isinstance(inner_want, ObjShape) and not inner_want.from_snapshot:
                    parts.append(self.snap_to_value(fshape, inner_want))
                else:
                    parts.append(f"__snap.{snap_attr(fshape.root_path)}")
            else:  # pragma: no cover
                raise BackendError(f"bad snapshot field shape {fshape!r}")
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    def emit_new(self, e: ir.NewObj) -> str:
        parts = [
            self.value_of(init, e.obj_shape.fields[name])
            for name, init in e.field_inits.items()
        ]
        if not parts:
            return "()"
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    def emit_call(self, e: ir.Call) -> str:
        args = ["__env", "__snap"]
        if e.target.device:
            args.append("__geo")
        callee_ir = e.target.func_ir
        for (pname, pshape), expr in zip(
            _callee_passed(callee_ir), _call_value_exprs(e)
        ):
            args.append(self.value_of(expr, pshape))
        return f"{e.target.symbol}({', '.join(args)})"

    def emit_intrinsic(self, e: ir.IntrinsicCall) -> str:
        key = e.key
        a = [self.emit(x) for x in e.args]
        if key.startswith("mpi."):
            name = {
                "mpi.rank": "mpi_rank",
                "mpi.size": "mpi_size",
                "mpi.send": "mpi_send",
                "mpi.recv": "mpi_recv",
                "mpi.sendrecv": "mpi_sendrecv",
                "mpi.send_part": "mpi_send_part",
                "mpi.recv_part": "mpi_recv_part",
                "mpi.sendrecv_part": "mpi_sendrecv_part",
                "mpi.barrier": "mpi_barrier",
                "mpi.allreduce_sum": "mpi_allreduce_sum",
                "mpi.allreduce_sum_arr": "mpi_allreduce_sum_array",
                "mpi.bcast": "mpi_bcast",
                "mpi.gather": "mpi_gather",
                "mpi.wtime": "mpi_wtime",
            }[key]
            return f"__env.{name}({', '.join(a)})"
        if key.startswith("cuda.tid."):
            sub = key.split(".")[-1]
            if sub == "sync":
                return "__geo[4].wait()"
            return f"__geo{_GEO_INDEX[sub]}"
        if key == "cuda.copy_to_gpu":
            return f"__env.gpu_to_device({a[0]})"
        if key == "cuda.copy_from_gpu":
            return f"__env.gpu_from_device({a[0]})"
        if key == "cuda.device_zeros":
            elem = e.const_args[0]
            return f"__np.zeros(int({a[0]}), dtype='{elem.np_dtype.str}')"
        if key in ("cuda.free_gpu", "wj.free"):
            return f"__noop({a[0]})"
        if key == "wj.zeros":
            elem = e.const_args[0]
            return f"__np.zeros(int({a[0]}), dtype='{elem.np_dtype.str}')"
        if key == "wj.output":
            label = e.const_args[0]
            return f"__env.output({label!r}, {a[0]})"
        if key == "wj.lcg64":
            return f"__wj_lcg64({a[0]})"
        if key == "wj.u01":
            return f"__wj_u01({a[0]})"
        if key == "wj.dgemm":
            return f"__wj_dgemm({', '.join(a)})"
        if key.startswith("math."):
            return f"__math.{key.split('.')[1]}({', '.join(a)})"
        if key == "builtin.abs":
            return f"abs({a[0]})"
        if key == "builtin.min":
            return f"min({a[0]}, {a[1]})"
        if key == "builtin.max":
            return f"max({a[0]}, {a[1]})"
        if key.startswith("ffi."):
            ff = e.const_args[0]
            return f"__ffi[{ff.cname!r}]({', '.join(a)})"
        raise BackendError(f"unknown intrinsic {key}")

    # -- statements ----------------------------------------------------------

    def emit_stmt(self, s: ir.Stmt) -> None:
        w = self.w
        if isinstance(s, (ir.LocalDecl, ir.Assign)):
            want = self.f_local_shape(s.name)
            w.line(f"{s.name} = {self.value_of(s.value, want)}")
            return
        if isinstance(s, ir.FieldStore):
            oshape = s.obj.shape
            w.line(
                f"__snap.{snap_attr(oshape.root_path)}.{s.fname} = "
                f"{self.emit(s.value)}"
            )
            return
        if isinstance(s, ir.ArrayStore):
            # bounds_ok accesses were proven in-range by the bce pass
            if self.p.bounds_checks and not s.bounds_ok:
                w.line(
                    f"__wj_st({self.emit(s.arr)}, {self.emit(s.index)}, "
                    f"{self.emit(s.value)})"
                )
                return
            w.line(
                f"{self.emit(s.arr)}[{self.emit(s.index)}] = {self.emit(s.value)}"
            )
            return
        if isinstance(s, ir.If):
            w.line(f"if {self.emit(s.cond)}:")
            self._block(s.then)
            if s.orelse:
                w.line("else:")
                self._block(s.orelse)
            return
        if isinstance(s, ir.ForRange):
            rng = f"range({self.emit(s.start)}, {self.emit(s.stop)}"
            if s.step is not None:
                rng += f", {self.emit(s.step)}"
            rng += ")"
            w.line(f"for {s.var} in {rng}:")
            self._block(s.body)
            return
        if isinstance(s, ir.While):
            w.line(f"while {self.emit(s.cond)}:")
            self._block(s.body)
            return
        if isinstance(s, ir.Return):
            if s.value is None:
                w.line("return")
            else:
                want = self.f.ret_shape
                w.line(f"return {self.value_of(s.value, want)}")
            return
        if isinstance(s, ir.ExprStmt):
            if isinstance(s.value, ir.KernelLaunch):
                self.emit_launch(s.value)
                return
            w.line(f"{self.emit(s.value)}")
            return
        if isinstance(s, ir.Break):
            w.line("break")
            return
        if isinstance(s, ir.Continue):
            w.line("continue")
            return
        raise BackendError(f"unhandled statement {type(s).__name__}")

    def _block(self, stmts) -> None:
        self.w.depth += 1
        if not stmts:
            self.w.line("pass")
        else:
            for st in stmts:
                self.emit_stmt(st)
        self.w.depth -= 1

    def f_local_shape(self, name: str) -> Shape:
        """The local's final (merged) shape — governs its representation."""
        return self.p.local_shapes[self.f.symbol].get(name)

    def emit_launch(self, e: ir.KernelLaunch) -> None:
        gdims = [self.dim_expr(e.config, "grid", c) for c in "xyz"]
        bdims = [self.dim_expr(e.config, "block", c) for c in "xyz"]
        callee_ir = e.target.func_ir
        call_args = []
        for (pname, pshape), expr in zip(
            _callee_passed(callee_ir), _call_value_exprs_kernel(e)
        ):
            call_args.append(self.value_of(expr, pshape))
        coop = "True" if self.p.kernel_uses_sync(e.target) else "False"
        thunk = (
            f"lambda __geo, *__a: {e.target.symbol}(__env, __snap, __geo, *__a)"
        )
        self.w.line(
            f"__env.launch_kernel({thunk}, "
            f"({', '.join(gdims)}), ({', '.join(bdims)}), "
            f"({', '.join(call_args)}{',' if len(call_args) == 1 else ''}), "
            f"cooperative={coop})"
        )

    def dim_expr(self, config: ir.Expr, which: str, comp: str) -> str:
        """Emit grid/block component access from the CudaConfig expression."""
        cshape = config.shape
        assert isinstance(cshape, ObjShape)
        dshape = cshape.field(which)
        assert isinstance(dshape, ObjShape)
        pshape = dshape.field(comp)
        if isinstance(pshape, PrimShape) and pshape.const is not None:
            return self.lit(pshape.const, pshape.ty)
        # runtime config: index through the emitted value
        widx = list(cshape.fields).index(which)
        cidx = list(dshape.fields).index(comp)
        return f"{self.emit(config)}[{widx}][{cidx}]"

    # -- function shell -------------------------------------------------------

    def emit_function(self) -> None:
        params = ["__env", "__snap"]
        if self.f.is_device:
            params.append("__geo")
        for name, shape in passed_params(self.f):
            params.append(name)
        self.w.line(f"def {self.f.symbol}({', '.join(params)}):")
        self._block(self.f.body or [ir.Return(None)])
        self.w.line("")


def _callee_passed(callee_ir: ir.FuncIR):
    return passed_params(callee_ir)


def _call_value_exprs(e: ir.Call):
    """Caller expressions matching the callee's passed parameters."""
    callee = e.target.func_ir
    out = []
    if callee.self_shape is not None and not callee.self_shape.from_snapshot:
        out.append(e.recv)
    for expr, shape in zip(e.args, callee.param_shapes):
        if isinstance(shape, ObjShape) and shape.from_snapshot:
            continue
        out.append(expr)
    return out


def _call_value_exprs_kernel(e: ir.KernelLaunch):
    callee = e.target.func_ir
    out = []
    if callee.self_shape is not None and not callee.self_shape.from_snapshot:
        out.append(e.recv)
    for expr, shape in zip(e.args, callee.param_shapes):
        if isinstance(shape, ObjShape) and shape.from_snapshot:
            continue
        out.append(expr)
    return out


class _ProgramEmitter:
    def __init__(self, program: Program, *, bounds_checks: bool = False):
        self.program = program
        self.bounds_checks = bounds_checks
        self.w = _Writer()
        self.local_shapes: dict[str, dict[str, Shape]] = {}
        self._sync_cache: dict[str, bool] = {}

    def kernel_uses_sync(self, spec) -> bool:
        cached = self._sync_cache.get(spec.symbol)
        if cached is None:
            cached = any(
                isinstance(x, ir.IntrinsicCall) and x.key == "cuda.tid.sync"
                for s in self.program.specializations
                if s.device
                for x in ir.walk_exprs(s.func_ir.body)
            )
            self._sync_cache[spec.symbol] = cached
        return cached

    def emit(self) -> str:
        w = self.w
        w.line("# generated by repro.backends.pybackend — do not edit")
        w.line("")
        for spec in self.program.specializations:
            self.local_shapes[spec.symbol] = compute_local_shapes(spec.func_ir)
            _FuncEmitter(self, spec.func_ir).emit_function()
        self._emit_entry()
        return w.source()

    def _emit_entry(self) -> None:
        w = self.w
        entry = self.program.entry
        args = ["__env", "__snap"]
        for name, shape in passed_params(entry.func_ir):
            if isinstance(shape, PrimShape):
                if shape.const is None:
                    raise BackendError(
                        "entry scalar argument without a recorded value"
                    )
                args.append(repr(shape.const))
            elif isinstance(shape, ArrayShape):
                args.append(f"__arrays[{shape.slot}]")
            else:
                raise BackendError(f"unsupported entry parameter shape {shape!r}")
        w.line("def __entry(__env, __snap, __arrays):")
        w.depth += 1
        w.line(f"return {entry.symbol}({', '.join(args)})")
        w.depth -= 1


def _ld_checked(arr, idx):
    """Bounds-checked array load for the py backend's REPRO_BOUNDS mode."""
    i = int(idx)
    if not 0 <= i < len(arr):
        from repro.errors import GuestRuntimeError

        raise GuestRuntimeError(
            f"out-of-bounds array access in translated code: index {i} "
            f"not in [0, {len(arr)}) (debug bounds checking)"
        )
    return arr[i]


def _st_checked(arr, idx, value):
    """Bounds-checked array store for the py backend's REPRO_BOUNDS mode."""
    i = int(idx)
    if not 0 <= i < len(arr):
        from repro.errors import GuestRuntimeError

        raise GuestRuntimeError(
            f"out-of-bounds array access in translated code: index {i} "
            f"not in [0, {len(arr)}) (debug bounds checking)"
        )
    arr[i] = value


class _PyCompiled(CompiledProgram):
    def __init__(self, program: Program, source: str, *,
                 bounds_checks: bool = False):
        self.program = program
        self.source = source
        self.bounds_checks = bounds_checks
        self._globals = {
            "__np": np,
            "__math": math,
            "__f32": lambda x: float(np.float32(x)),
            "__i32": lambda x: int(np.int32(int(x))),
            "__noop": lambda *a: None,
            "__wj_lcg64": _lcg64_py,
            "__wj_u01": _u01_py,
            "__wj_dgemm": _dgemm_py,
            "__wj_ld": _ld_checked,
            "__wj_st": _st_checked,
            "__ffi": _ffi_table(),
        }
        code = compile(source, "<repro-pybackend>", "exec")
        exec(code, self._globals)  # noqa: S102 - our own generated code
        self._entry = self._globals["__entry"]

    def run(self, env, arrays: Sequence[np.ndarray]):
        snap = SimpleNamespace()
        for path, oshape in self.program.snapshot.objects:
            ns = SimpleNamespace()
            for fname, fshape in oshape.fields.items():
                if isinstance(fshape, ArrayShape) and fshape.slot is not None:
                    setattr(ns, fname, arrays[fshape.slot])
            setattr(snap, snap_attr(path), ns)
        return self._entry(env, snap, list(arrays))


def _ffi_table() -> dict:
    table = {}
    for root_table in intrinsic_registry._by_root.values():
        for spec in root_table.values():
            if spec.foreign is not None:
                table[spec.foreign.cname] = spec.pyimpl
    return table


class PyBackend(Backend):
    """Emit flat specialized Python and exec it (portable backend).

    Like the C backend, honors ``REPRO_BOUNDS`` (debug bounds checking):
    unproven array accesses go through checked helpers that raise
    :class:`~repro.errors.GuestRuntimeError` on out-of-bounds indices —
    numpy alone would silently accept negative indices."""

    name = "py"

    def __init__(self, *, bounds_checks: bool | None = None):
        from repro.env import env_flag

        if bounds_checks is None:
            bounds_checks = env_flag("REPRO_BOUNDS", default=False)
        self.bounds_checks = bounds_checks

    def compile(self, program: Program, opt: OptLevel) -> CompiledProgram:
        # the Python backend always emits at FULL optimization (see base.py)
        source = _ProgramEmitter(
            program, bounds_checks=self.bounds_checks).emit()
        return _PyCompiled(program, source,
                           bounds_checks=self.bounds_checks)

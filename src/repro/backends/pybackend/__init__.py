"""Python backend: emit flat specialized Python source and exec it."""

from repro.backends.pybackend.emit import PyBackend

__all__ = ["PyBackend"]
